package gnutella

import (
	"fmt"
	"sort"

	"repro/internal/simrng"
)

// Topology is an undirected overlay graph for flooding experiments.
type Topology struct {
	adj [][]int
}

// NumNodes returns the node count.
func (t *Topology) NumNodes() int { return len(t.adj) }

// Degree returns node v's degree.
func (t *Topology) Degree(v int) int { return len(t.adj[v]) }

// Neighbors returns node v's adjacency list (not a copy; do not
// mutate).
func (t *Topology) Neighbors(v int) []int { return t.adj[v] }

// NewRandom builds an Erdős–Rényi-style overlay with n nodes and
// average degree avgDegree, plus a Hamiltonian ring to guarantee
// connectivity (matching Gnutella bootstrap behavior, where every peer
// holds at least a couple of live connections).
func NewRandom(r *simrng.RNG, n, avgDegree int) (*Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("gnutella: topology needs >= 2 nodes, got %d", n)
	}
	if avgDegree < 2 || avgDegree >= n {
		return nil, fmt.Errorf("gnutella: average degree %d out of range for %d nodes", avgDegree, n)
	}
	t := &Topology{adj: make([][]int, n)}
	seen := make(map[[2]int]bool, n*avgDegree/2)
	addEdge := func(a, b int) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		key := [2]int{a, b}
		if seen[key] {
			return
		}
		seen[key] = true
		t.adj[a] = append(t.adj[a], b)
		t.adj[b] = append(t.adj[b], a)
	}
	for i := 0; i < n; i++ {
		addEdge(i, (i+1)%n)
	}
	extra := n * (avgDegree - 2) / 2
	for i := 0; i < extra; i++ {
		addEdge(r.Intn(n), r.Intn(n))
	}
	return t, nil
}

// NewPowerLaw builds a Barabási–Albert preferential-attachment overlay:
// each new node attaches to m existing nodes with probability
// proportional to their degree. This is the topology class the paper
// notes arises naturally in Gnutella and makes it fragmentation-prone.
func NewPowerLaw(r *simrng.RNG, n, m int) (*Topology, error) {
	if m < 1 {
		return nil, fmt.Errorf("gnutella: attachment count must be >= 1, got %d", m)
	}
	if n <= m {
		return nil, fmt.Errorf("gnutella: need more than %d nodes, got %d", m, n)
	}
	t := &Topology{adj: make([][]int, n)}
	// targets holds one entry per edge endpoint, so uniform sampling
	// from it is degree-proportional sampling.
	targets := make([]int, 0, 2*m*n)
	// Seed: a small clique of m+1 nodes.
	for a := 0; a <= m; a++ {
		for b := a + 1; b <= m; b++ {
			t.adj[a] = append(t.adj[a], b)
			t.adj[b] = append(t.adj[b], a)
			targets = append(targets, a, b)
		}
	}
	for v := m + 1; v < n; v++ {
		picked := make(map[int]bool, m)
		for len(picked) < m {
			picked[targets[r.Intn(len(targets))]] = true
		}
		// Attach in sorted order: map iteration order would otherwise
		// leak into the adjacency lists and the degree-proportional
		// sampling pool, so same-seed topologies would differ between
		// runs.
		ws := make([]int, 0, m)
		for w := range picked {
			ws = append(ws, w)
		}
		sort.Ints(ws)
		for _, w := range ws {
			t.adj[v] = append(t.adj[v], w)
			t.adj[w] = append(t.adj[w], v)
			targets = append(targets, v, w)
		}
	}
	return t, nil
}

// FloodStats reports one flood's reach and traffic.
type FloodStats struct {
	// Reached is the set of nodes that received the query (including
	// the origin).
	Reached []int
	// Messages is the number of query messages sent, counting the
	// duplicates inherent to flooding (each receiver forwards to all
	// neighbors except the sender while TTL remains).
	Messages int
}

// Flood performs a Gnutella-style broadcast from origin with the given
// TTL. TTL 0 reaches only the origin.
func (t *Topology) Flood(origin, ttl int) (FloodStats, error) {
	if origin < 0 || origin >= len(t.adj) {
		return FloodStats{}, fmt.Errorf("gnutella: origin %d out of range", origin)
	}
	if ttl < 0 {
		return FloodStats{}, fmt.Errorf("gnutella: negative TTL %d", ttl)
	}
	depth := make([]int, len(t.adj))
	for i := range depth {
		depth[i] = -1
	}
	depth[origin] = 0
	stats := FloodStats{Reached: []int{origin}}
	frontier := []int{origin}
	for d := 0; d < ttl && len(frontier) > 0; d++ {
		var next []int
		for _, v := range frontier {
			// v forwards to all neighbors except the one it came from
			// (approximated as degree-1 for non-origin nodes); every
			// such transmission is a message, duplicate or not.
			out := len(t.adj[v])
			if v != origin {
				out--
			}
			stats.Messages += out
			for _, w := range t.adj[v] {
				if depth[w] == -1 {
					depth[w] = d + 1
					next = append(next, w)
					stats.Reached = append(stats.Reached, w)
				}
			}
		}
		frontier = next
	}
	return stats, nil
}

// FloodSearch floods a query from origin over the topology and counts
// results among reached peers using the population's libraries. The
// topology and population must have the same size.
func FloodSearch(t *Topology, p *Population, r *simrng.RNG, origin, ttl int, desired int) (SearchResult, FloodStats, error) {
	if t.NumNodes() != p.Size() {
		return SearchResult{}, FloodStats{}, fmt.Errorf(
			"gnutella: topology has %d nodes, population %d", t.NumNodes(), p.Size())
	}
	item := p.universe.DrawQuery(r)
	stats, err := t.Flood(origin, ttl)
	if err != nil {
		return SearchResult{}, FloodStats{}, err
	}
	res := SearchResult{Probes: len(stats.Reached)}
	for _, v := range stats.Reached {
		res.Results += p.libs[v].Results(item)
	}
	res.Satisfied = res.Results >= desired
	return res, stats, nil
}
