// Package pkg exercises the obsname analyzer against the fixture
// README one directory up.
package pkg

import (
	"repro/internal/obs"
)

const queriesName = "guess_sim_queries_total"

func documented(reg *obs.Registry) {
	reg.Counter(queriesName, "Documented via the guess_sim_* family row.")
	reg.Gauge("guess_sim_cache_entries_avg", "Documented family suffix.")
	reg.Histogram("guess_node_rtt_seconds", "Documented verbatim.", []float64{0.1, 1})
}

func computedName(reg *obs.Registry, suffix string) {
	reg.Counter("guess_sim_"+suffix, "") // want `metric name must be a compile-time string constant`
}

func badGrammar(reg *obs.Registry) {
	reg.Counter("node_queries_Total", "") // want `does not match`
}

func duplicate(reg *obs.Registry) {
	reg.Counter("guess_sim_queries_total", "") // want `already registered at`
}

func undocumented(reg *obs.Registry) {
	reg.Counter("guess_sim_probes_total", "") // want `not listed in the README metric tables`
}

func annotated(reg *obs.Registry) {
	//lint:obsname-ok fixture: internal-only metric, deliberately undocumented
	reg.Counter("guess_sim_births_total", "")
}
