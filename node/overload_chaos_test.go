package node

// The flash-crowd battery: a server at a fixed capacity under ~8x
// offered load from flooding requesters, with light requesters probing
// within their fair share. Fair admission must keep the light
// requesters' service near-perfect while the flat window collapses for
// everyone. Requesters are raw memnet endpoints (not Nodes) so the
// test controls demand precisely and observes every refusal.

import (
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wire"
	"repro/node/memnet"
)

// probeOutcome classifies one raw probe exchange.
type probeOutcome int

const (
	probeLost probeOutcome = iota
	probeServed
	probeRefused
)

// rawProbe sends req from conn and waits for its correlated reply.
// Errors read as probeLost so it is safe off the test goroutine.
func rawProbe(conn *memnet.Conn, server netip.AddrPort,
	req wire.Message, timeout time.Duration) probeOutcome {
	pkt, err := wire.Encode(req)
	if err != nil {
		return probeLost
	}
	if _, err := conn.WriteTo(pkt, addrOf(server)); err != nil {
		return probeLost
	}
	buf := make([]byte, wire.MaxPacket)
	deadline := time.Now().Add(timeout)
	conn.SetReadDeadline(deadline)
	for {
		n, _, err := conn.ReadFrom(buf)
		if err != nil {
			return probeLost // deadline: no reply at all
		}
		msg, err := wire.Decode(buf[:n])
		if err != nil || msg.ID() != req.ID() {
			continue // stale reply from an earlier probe
		}
		switch msg.(type) {
		case *wire.Busy:
			return probeRefused
		case *wire.QueryHit, *wire.Pong:
			return probeServed
		default:
			return probeLost
		}
	}
}

func addrOf(ap netip.AddrPort) net.Addr { return net.UDPAddrFromAddrPort(ap) }

// flashCrowdResult is one mode's outcome.
type flashCrowdResult struct {
	goodSent, goodServed int
	stats                Stats
}

// runFlashCrowd drives the scenario against one admission mode: a
// server at 120 probes/s, two floods pushing ~500 queries/s each, and
// two light requesters at ~25 queries/s each (well inside their fair
// share). Only light-requester probes sent after the warmup count.
func runFlashCrowd(t *testing.T, mode AdmissionMode) flashCrowdResult {
	t.Helper()
	nw := memnet.New(2024 + uint64(mode))
	nw.SetDefaultProfile(memnet.LinkProfile{Latency: 200 * time.Microsecond})
	server := startMemNode(t, nw, Config{
		Files:              []string{"hotfile.iso"},
		MaxProbesPerSecond: 120,
		Admission:          mode,
		AdmissionWindow:    100 * time.Millisecond,
		PingInterval:       time.Hour,
		Seed:               1,
	})
	target := server.Addr()

	const (
		warmup  = 300 * time.Millisecond
		measure = 1200 * time.Millisecond
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var msgID atomic.Uint64
	msgID.Store(1 << 40) // clear of the server's own ID space

	// Two floods: fire-and-forget queries every 2ms, replies drained by
	// the refusals the server sends back (never read).
	for i := 0; i < 2; i++ {
		conn := nw.Listen()
		t.Cleanup(func() { conn.Close() })
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(2 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					q := &wire.Query{MsgID: msgID.Add(1), Desired: 1, Keyword: "hotfile"}
					pkt, err := wire.Encode(q)
					if err != nil {
						return
					}
					conn.WriteTo(pkt, addrOf(target))
				}
			}
		}()
	}
	// A background pinger exercises tier-1 shedding during overload.
	pinger := nw.Listen()
	t.Cleanup(func() { pinger.Close() })
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				p := &wire.Ping{MsgID: msgID.Add(1)}
				pkt, err := wire.Encode(p)
				if err != nil {
					return
				}
				pinger.WriteTo(pkt, addrOf(target))
			}
		}
	}()

	// Two light requesters: one query every 40ms, counting outcomes
	// after the warmup.
	results := make([]flashCrowdResult, 2)
	startAt := time.Now()
	for i := 0; i < 2; i++ {
		conn := nw.Listen()
		t.Cleanup(func() { conn.Close() })
		wg.Add(1)
		go func(r *flashCrowdResult) {
			defer wg.Done()
			for time.Since(startAt) < warmup+measure {
				inMeasure := time.Since(startAt) >= warmup
				q := &wire.Query{MsgID: msgID.Add(1), Desired: 1, Keyword: "hotfile"}
				out := rawProbe(conn, target, q, 30*time.Millisecond)
				if inMeasure {
					r.goodSent++
					if out == probeServed {
						r.goodServed++
					}
				}
				time.Sleep(40 * time.Millisecond)
			}
		}(&results[i])
	}

	time.Sleep(warmup + measure)
	close(stop)
	wg.Wait()
	if !nw.WaitIdle(2 * time.Second) {
		t.Fatal("network did not go idle after the flash crowd")
	}
	sum := flashCrowdResult{stats: server.Stats()}
	for _, r := range results {
		sum.goodSent += r.goodSent
		sum.goodServed += r.goodServed
	}
	if sum.goodSent < 20 {
		t.Fatalf("light requesters sent only %d probes; pacing broken", sum.goodSent)
	}
	return sum
}

// TestFlashCrowdFairProtectsInCapacityRequesters is the tentpole
// acceptance test: at ~8x capacity, fair admission keeps in-capacity
// requesters at >= 90% success, sheds by tier with full accounting,
// and skips cache writes under pressure — while the flat window
// collapses for the same requesters.
func TestFlashCrowdFairProtectsInCapacityRequesters(t *testing.T) {
	if testing.Short() {
		t.Skip("flash crowd runs ~3s of wall clock")
	}
	fair := runFlashCrowd(t, AdmissionFair)
	flat := runFlashCrowd(t, AdmissionFlat)

	fairRate := float64(fair.goodServed) / float64(fair.goodSent)
	flatRate := float64(flat.goodServed) / float64(flat.goodSent)
	t.Logf("in-capacity success: fair %d/%d (%.0f%%), flat %d/%d (%.0f%%)",
		fair.goodServed, fair.goodSent, 100*fairRate,
		flat.goodServed, flat.goodSent, 100*flatRate)

	if fairRate < 0.9 {
		t.Errorf("fair admission: in-capacity success %.2f below 0.9", fairRate)
	}
	if flatRate > 0.6 {
		t.Errorf("flat admission did not collapse: in-capacity success %.2f", flatRate)
	}
	if fairRate <= flatRate {
		t.Errorf("fair (%.2f) not better than flat (%.2f)", fairRate, flatRate)
	}

	// Fair mode accounts every refusal by tier and degrades in order:
	// pings shed, queries shed, cache writes skipped.
	fs := fair.stats
	if fs.ShedQueries == 0 {
		t.Error("fair mode shed no queries under 8x overload")
	}
	if fs.ShedPings == 0 {
		t.Error("fair mode shed no pings (tier 1) under pressure")
	}
	if fs.CacheWriteSkips == 0 {
		t.Error("fair mode skipped no cache writes under pressure")
	}
	if got, want := fs.ProbesRefused, fs.ShedPings+fs.ShedQueries+fs.ShedDrain; got != want {
		t.Errorf("fair refusals unaccounted: ProbesRefused=%d, tiers sum to %d", got, want)
	}

	// Flat mode's counters stay byte-identical to the original node:
	// refusals exist but no tier counters move.
	fl := flat.stats
	if fl.ProbesRefused == 0 {
		t.Error("flat mode refused nothing under 8x overload")
	}
	if fl.ShedPings != 0 || fl.ShedQueries != 0 || fl.ShedDrain != 0 || fl.CacheWriteSkips != 0 {
		t.Errorf("flat mode moved tier counters: %+v", fl)
	}
}
