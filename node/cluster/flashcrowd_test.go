package cluster

// The cluster flash-crowd acceptance test: a 10-node harness-supervised
// cluster where a heavy requester ROTATES its queries across all nodes.
// To any single node the rotator looks light — below its local fair
// share — so per-node fair admission admits it; only the cluster-merged
// demand view exposes its true appetite. The test asserts the three
// robustness postures in sequence:
//
//  1. service up: the rotator is shed cluster-wide while in-capacity
//     requesters keep >= 90% satisfaction;
//  2. service killed mid-run: every node degrades to local-only
//     shedding (fallback counters move, light requesters stay
//     protected from the local floods, the rotator sneaks back in —
//     the measurable cost of losing the cluster view);
//  3. service restarted: nodes re-converge and the rotator's
//     cluster-wide demand is rebuilt under the fresh epoch.

import (
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
	"repro/node"
	"repro/node/memnet"
)

// probeOutcome classifies one raw probe exchange (mirrors the node
// package's flash-crowd battery; requesters are raw memnet endpoints so
// the test controls demand precisely).
type probeOutcome int

const (
	probeLost probeOutcome = iota
	probeServed
	probeRefused
)

// rawProbe sends req from conn and waits for its correlated reply.
// Errors read as probeLost so it is safe off the test goroutine.
func rawProbe(conn *memnet.Conn, server netip.AddrPort, req wire.Message, timeout time.Duration) probeOutcome {
	pkt, err := wire.Encode(req)
	if err != nil {
		return probeLost
	}
	if _, err := conn.WriteTo(pkt, net.UDPAddrFromAddrPort(server)); err != nil {
		return probeLost
	}
	buf := make([]byte, wire.MaxPacket)
	conn.SetReadDeadline(time.Now().Add(timeout))
	for {
		n, _, err := conn.ReadFrom(buf)
		if err != nil {
			return probeLost
		}
		msg, err := wire.Decode(buf[:n])
		if err != nil || msg.ID() != req.ID() {
			continue
		}
		switch msg.(type) {
		case *wire.Busy:
			return probeRefused
		case *wire.QueryHit, *wire.Pong:
			return probeServed
		default:
			return probeLost
		}
	}
}

// phaseRates accumulates probe outcomes per measurement phase:
// index 1 = service up, 2 = local fallback (0 discards warmups and
// transitions).
type phaseRates struct {
	sent, served [3]atomic.Int64
}

func (p *phaseRates) record(phase int32, out probeOutcome) {
	if phase <= 0 {
		return
	}
	p.sent[phase].Add(1)
	if out == probeServed {
		p.served[phase].Add(1)
	}
}

func (p *phaseRates) rate(phase int) (float64, int64) {
	sent := p.sent[phase].Load()
	if sent == 0 {
		return 0, 0
	}
	return float64(p.served[phase].Load()) / float64(sent), sent
}

// TestClusterFlashCrowdRotatingRequester is the PR's acceptance
// scenario. ~3s of wall clock: skipped in -short runs.
func TestClusterFlashCrowdRotatingRequester(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster flash crowd runs ~3s of wall clock")
	}
	const (
		slots   = 10
		measure = 600 * time.Millisecond
	)
	nw := memnet.New(4242)
	nw.SetDefaultProfile(memnet.LinkProfile{Latency: 200 * time.Microsecond})

	// The shed-state service; its address moves on restart, so clients
	// dial through a shared slot.
	var svcAddr atomic.Value // netip.AddrPort
	ln := nw.ListenStream()
	svc, err := Serve(ln, ServiceConfig{Window: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	svcAddr.Store(ln.AddrPort())

	// The harness supervises the ten server nodes; every member bundles
	// a node with its sync client. Per-node capacity is 15 queries per
	// 100ms window; a local flood keeps each node under pressure so the
	// fair shed path is live the whole test.
	reg := obs.NewRegistry()
	var (
		mu      sync.Mutex
		nodes   []*node.Node
		clients []*SyncClient
		addrs   []netip.AddrPort
	)
	h, err := StartHarness(HarnessConfig{
		Slots:   slots,
		Stagger: 5 * time.Millisecond,
		Start: func(slot int) (Member, error) {
			n, err := node.New(nw.Listen(), node.Config{
				Files:              []string{"hotfile.iso"},
				MaxProbesPerSecond: 150,
				Admission:          node.AdmissionFair,
				AdmissionWindow:    100 * time.Millisecond,
				PingInterval:       time.Hour,
				Seed:               uint64(slot + 1),
			})
			if err != nil {
				return nil, err
			}
			c, err := NewSyncClient(n, ClientConfig{
				Name: "node-" + string(rune('a'+slot)),
				Dial: func() (net.Conn, error) {
					return nw.DialStream(svcAddr.Load().(netip.AddrPort))
				},
				Interval:   25 * time.Millisecond,
				Timeout:    40 * time.Millisecond,
				StaleAfter: 100 * time.Millisecond,
				Nonce:      uint64(slot + 1),
				Seed:       uint64(slot + 1),
				Metrics:    reg,
			})
			if err != nil {
				n.Close()
				return nil, err
			}
			mu.Lock()
			nodes = append(nodes, n)
			clients = append(clients, c)
			addrs = append(addrs, n.Addr())
			mu.Unlock()
			return NewNodeMember(n, c), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Stop()
	waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(addrs) == slots
	})
	mu.Lock()
	targets := append([]netip.AddrPort(nil), addrs...)
	syncs := append([]*SyncClient(nil), clients...)
	servers := append([]*node.Node(nil), nodes...)
	mu.Unlock()
	allConverged := func() bool {
		for _, c := range syncs {
			if c.Status().Fallback {
				return false
			}
		}
		return true
	}
	allFallback := func() bool {
		for _, c := range syncs {
			if !c.Status().Fallback {
				return false
			}
		}
		return true
	}
	waitFor(t, 5*time.Second, allConverged)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var phase atomic.Int32
	var msgID atomic.Uint64
	msgID.Store(1 << 40)

	// Per-node floods: fire-and-forget queries every 4ms (~25 per
	// admission window against a capacity of 15) from a node-local
	// address. They create the pressure; their own demand is locally
	// heavy, so plain per-node fairness sheds them in every posture.
	for i := 0; i < slots; i++ {
		conn := nw.Listen()
		t.Cleanup(func() { conn.Close() })
		target := targets[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(4 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					q := &wire.Query{MsgID: msgID.Add(1), Desired: 1, Keyword: "hotfile"}
					if pkt, err := wire.Encode(q); err == nil {
						conn.WriteTo(pkt, net.UDPAddrFromAddrPort(target))
					}
				}
			}
		}()
	}

	// The rotating heavy requester: ONE source address spraying queries
	// round-robin across all ten nodes. Per node it offers ~2 queries
	// per window — under the local fair share of ~5 — while its
	// cluster-wide appetite is ~10x that.
	heavyConn := nw.Listen()
	t.Cleanup(func() { heavyConn.Close() })
	heavyAddr := heavyConn.AddrPort()
	var heavy phaseRates
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			q := &wire.Query{MsgID: msgID.Add(1), Desired: 1, Keyword: "hotfile"}
			out := rawProbe(heavyConn, targets[i%slots], q, 30*time.Millisecond)
			heavy.record(phase.Load(), out)
			time.Sleep(4 * time.Millisecond)
		}
	}()

	// Ten in-capacity light requesters, one per node, each probing its
	// home node every 50ms (~2 per window).
	var light phaseRates
	for i := 0; i < slots; i++ {
		conn := nw.Listen()
		t.Cleanup(func() { conn.Close() })
		target := targets[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := &wire.Query{MsgID: msgID.Add(1), Desired: 1, Keyword: "hotfile"}
				out := rawProbe(conn, target, q, 30*time.Millisecond)
				light.record(phase.Load(), out)
				time.Sleep(50 * time.Millisecond)
			}
		}()
	}

	// Posture 1 — service up. Wait until the service's merged view has
	// the rotator pegged well past any node's fair share, then measure.
	heavyKey := node.RequesterKey(heavyAddr, svc.Salt())
	waitFor(t, 5*time.Second, func() bool { return svc.Estimate(heavyKey) >= 15 })
	phase.Store(1)
	time.Sleep(measure)
	phase.Store(0)

	// Posture 2 — service killed mid-run. Nodes must detect staleness
	// and degrade to local-only shedding.
	svc.Close()
	waitFor(t, 5*time.Second, allFallback)
	phase.Store(2)
	time.Sleep(measure)
	phase.Store(0)

	snap := reg.Snapshot()
	if got := snap.Counters["guess_node_cluster_fallbacks_total"]; got < slots {
		t.Errorf("fallbacks_total = %d after service kill, want >= %d", got, slots)
	}

	// Posture 3 — service restarted (fresh epoch: the cold service
	// supersedes the dead one). Nodes re-converge and the rotator's
	// cluster demand is rebuilt under the rotated salt.
	ln2 := nw.ListenStream()
	svc2, err := Serve(ln2, ServiceConfig{Window: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	svcAddr.Store(ln2.AddrPort())
	waitFor(t, 5*time.Second, allConverged)
	heavyKey2 := node.RequesterKey(heavyAddr, svc2.Salt())
	waitFor(t, 5*time.Second, func() bool { return svc2.Estimate(heavyKey2) >= 15 })

	close(stop)
	wg.Wait()
	h.Stop()
	if !nw.WaitIdle(2 * time.Second) {
		t.Fatal("network did not go idle after the flash crowd")
	}

	lightUp, lightUpN := light.rate(1)
	heavyUp, heavyUpN := heavy.rate(1)
	lightDown, lightDownN := light.rate(2)
	heavyDown, _ := heavy.rate(2)
	t.Logf("service up:   light %.0f%% of %d, rotator %.0f%% of %d",
		100*lightUp, lightUpN, 100*heavyUp, heavyUpN)
	t.Logf("service down: light %.0f%% of %d, rotator %.0f%%",
		100*lightDown, lightDownN, 100*heavyDown)

	if lightUpN < 50 {
		t.Fatalf("light requesters sent only %d probes in the service-up phase; pacing broken", lightUpN)
	}
	// 1. With the cluster view, in-capacity requesters stay served and
	// the rotator is shed despite looking light everywhere.
	if lightUp < 0.9 {
		t.Errorf("service up: in-capacity success %.2f below 0.9", lightUp)
	}
	if heavyUp > 0.3 {
		t.Errorf("service up: rotating heavy requester served %.2f, want mostly shed", heavyUp)
	}
	// 2. Without it, per-node fairness still protects light requesters
	// from the local floods — but the rotator's spread load gets
	// through, which is exactly the gap the service closes.
	if lightDown < 0.9 {
		t.Errorf("fallback: in-capacity success %.2f below 0.9", lightDown)
	}
	if heavyDown < heavyUp+0.3 {
		t.Errorf("fallback: rotator served %.2f vs %.2f with service up; local-only shedding should admit it", heavyDown, heavyUp)
	}

	// Every node shed queries (the floods) in all postures, and all ten
	// re-converged onto the restarted service.
	var shed int64
	for _, n := range servers {
		shed += n.Stats().ShedQueries
	}
	if shed == 0 {
		t.Error("no node shed any query under sustained overload")
	}
	snap = reg.Snapshot()
	if got := snap.Counters["guess_node_cluster_reconnects_total"]; got < 2*slots {
		t.Errorf("reconnects_total = %d, want >= %d (initial convergence + post-restart)", got, 2*slots)
	}
}
