// Policy comparison: sweep the selection policies over the QueryPong
// slot (the paper's most influential policy type, Figure 10) and show
// the cost/fairness trade-off each one makes.
//
//	go run ./examples/policycompare
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"sync"

	guess "repro"
)

func main() {
	policies := []guess.Selection{guess.Random, guess.MRU, guess.LRU, guess.MFS, guess.MR}

	type outcome struct {
		policy  guess.Selection
		results *guess.Results
	}
	outcomes := make([]outcome, len(policies))
	var wg sync.WaitGroup
	errs := make([]error, len(policies))
	for i, pol := range policies {
		wg.Add(1)
		go func(i int, pol guess.Selection) {
			defer wg.Done()
			cfg := guess.DefaultConfig()
			cfg.NetworkSize = 500
			cfg.WarmupTime = 200
			cfg.MeasureTime = 800
			cfg.QueryPong = pol
			cfg.CacheReplacement = guess.EvictionFor(pol)
			res, err := guess.Run(context.Background(), cfg)
			if err != nil {
				errs[i] = err
				return
			}
			outcomes[i] = outcome{pol, res}
		}(i, pol)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("QueryPong policy comparison (CacheReplacement paired, rest Random)")
	fmt.Printf("%-8s %12s %12s %12s %14s\n",
		"policy", "probes/query", "good", "unsat%", "top-peer load")
	for _, o := range outcomes {
		ranked := o.results.RankedLoads()
		top := int64(0)
		if len(ranked) > 0 {
			top = ranked[0]
		}
		fmt.Printf("%-8s %12.1f %12.1f %12.1f %14d\n",
			o.policy, o.results.ProbesPerQuery(), o.results.GoodProbesPerQuery(),
			100*o.results.Unsatisfaction(), top)
	}

	// Fairness: how concentrated is the load under each policy?
	fmt.Println("\nLoad concentration (share of all probes received by the busiest 1% of peers):")
	for _, o := range outcomes {
		ranked := o.results.RankedLoads()
		total := o.results.TotalLoad()
		if total == 0 || len(ranked) == 0 {
			continue
		}
		onePercent := len(ranked) / 100
		if onePercent < 1 {
			onePercent = 1
		}
		var topSum int64
		for _, l := range ranked[:onePercent] {
			topSum += l
		}
		fmt.Printf("  %-8s %5.1f%%\n", o.policy, 100*float64(topSum)/float64(total))
	}

	sort.Slice(outcomes, func(i, j int) bool {
		return outcomes[i].results.ProbesPerQuery() < outcomes[j].results.ProbesPerQuery()
	})
	fmt.Printf("\nCheapest policy in this run: %s (%.1f probes/query)\n",
		outcomes[0].policy, outcomes[0].results.ProbesPerQuery())
}
