package experiments

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/gossip"
)

func TestSpecValidate(t *testing.T) {
	good := Spec{Family: FamilyGUESS, Core: []core.Params{tinyParams(1)}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name string
		spec Spec
	}{
		{"unknown family", Spec{Family: "quantum", Core: []core.Params{tinyParams(1)}}},
		{"no params", Spec{Family: FamilyGUESS}},
		{"wrong slice", Spec{Family: FamilyGUESS, Gossip: []gossip.Params{gossip.DefaultParams()}}},
		{"two slices", Spec{
			Family: FamilyGUESS,
			Core:   []core.Params{tinyParams(1)},
			DHT:    []dht.Params{dht.DefaultParams()},
		}},
	}
	for _, tc := range cases {
		if err := tc.spec.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid spec", tc.name)
		}
	}
}

func TestSpecPointRoundTrip(t *testing.T) {
	spec := Spec{Family: FamilyGUESS, Core: []core.Params{tinyParams(1), tinyParams(2)}}
	if got := spec.NumPoints(); got != 2 {
		t.Fatalf("NumPoints = %d, want 2", got)
	}
	for i := 0; i < 2; i++ {
		pt := spec.Point(i)
		if err := pt.Validate(); err != nil {
			t.Fatalf("point %d invalid: %v", i, err)
		}
		if pt.Core.Seed != spec.Core[i].Seed {
			t.Fatalf("point %d seed %d, want %d", i, pt.Core.Seed, spec.Core[i].Seed)
		}
	}
	// Point must be a copy, not an alias into the spec.
	pt := spec.Point(0)
	pt.Core.Seed = 999
	if spec.Core[0].Seed == 999 {
		t.Fatal("Point aliases the spec's params")
	}
}

func TestPointValidate(t *testing.T) {
	p := tinyParams(1)
	g := gossip.DefaultParams()
	cases := []struct {
		name string
		pt   Point
	}{
		{"unknown family", Point{Family: "quantum", Core: &p}},
		{"missing params", Point{Family: FamilyGUESS}},
		{"extra params", Point{Family: FamilyGUESS, Core: &p, Gossip: &g}},
	}
	for _, tc := range cases {
		if err := tc.pt.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid point", tc.name)
		}
	}
}

// TestPointKey pins the content address: family-prefixed, stable for
// equal params, distinct across params and across families.
func TestPointKey(t *testing.T) {
	p1, p2 := tinyParams(1), tinyParams(1)
	a := Point{Family: FamilyGUESS, Core: &p1}
	b := Point{Family: FamilyGUESS, Core: &p2}
	if a.Key() != b.Key() {
		t.Fatalf("equal points got different keys: %q vs %q", a.Key(), b.Key())
	}
	if !strings.HasPrefix(a.Key(), "guess:") {
		t.Fatalf("key %q lacks family prefix", a.Key())
	}
	p3 := tinyParams(2)
	c := Point{Family: FamilyGUESS, Core: &p3}
	if a.Key() == c.Key() {
		t.Fatal("different seeds share a key")
	}
	// JSON round-trip must not change the key — the coordinator hashes
	// locally, the shared cache and workers hash the decoded point.
	blob, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var back Point
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Key() != a.Key() {
		t.Fatalf("key changed across JSON round-trip: %q vs %q", back.Key(), a.Key())
	}
}

// TestExpandPointsSeedDerivation pins the exact derivation formulas the
// pre-Spec runner used, so sweep results stay byte-identical across the
// API migration: point index i adds i*0x9e3779b9, and with R>1
// replications rep r of input point i0 first adds (r+1)*0x51ed2701 and
// expands at flat index i0*R+r.
func TestExpandPointsSeedDerivation(t *testing.T) {
	const baseSeed = 100
	params := []core.Params{tinyParams(baseSeed), tinyParams(baseSeed), tinyParams(baseSeed)}
	spec := tinySpec(params)

	flat := expandPoints(Options{}, spec, 1)
	if len(flat) != 3 {
		t.Fatalf("reps=1 expanded to %d points, want 3", len(flat))
	}
	for i, pt := range flat {
		want := uint64(baseSeed) + uint64(i)*pointSeed
		if pt.Core.Seed != want {
			t.Fatalf("reps=1 point %d seed %d, want %d", i, pt.Core.Seed, want)
		}
	}

	const reps = 3
	rep := expandPoints(Options{}, spec, reps)
	if len(rep) != 3*reps {
		t.Fatalf("reps=3 expanded to %d points, want 9", len(rep))
	}
	for i0 := 0; i0 < 3; i0++ {
		for r := 0; r < reps; r++ {
			idx := i0*reps + r
			want := uint64(baseSeed) + uint64(r+1)*replicationSeed + uint64(idx)*pointSeed
			if got := rep[idx].Core.Seed; got != want {
				t.Fatalf("point %d rep %d (flat %d) seed %d, want %d", i0, r, idx, got, want)
			}
		}
	}

	// Non-GUESS families expand verbatim: the engines own their seeds.
	fp := DefaultFloodParams()
	fpts := expandPoints(Options{Replications: 5}, Spec{Family: FamilyFlood, Flood: []FloodParams{fp}}, 1)
	if len(fpts) != 1 || fpts[0].Flood.Seed != fp.Seed {
		t.Fatalf("flood expansion altered the point: %+v", fpts)
	}
}

// TestRunPointFamilies runs one tiny point per family through the
// Runner interface and checks each yields its family's result,
// deterministically.
func TestRunPointFamilies(t *testing.T) {
	gp := gossip.DefaultParams()
	gp.NetworkSize = 50
	gp.NumQueries = 20
	dp := dht.DefaultParams()
	dp.NetworkSize = 50
	dp.NumLookups = 20
	fp := DefaultFloodParams()
	fp.NetworkSize = 50
	fp.NumQueries = 20
	cp := tinyParams(3)
	points := []Point{
		{Family: FamilyGUESS, Core: &cp},
		{Family: FamilyFlood, Flood: &fp},
		{Family: FamilyGossip, Gossip: &gp},
		{Family: FamilyDHT, DHT: &dp},
	}
	for _, pt := range points {
		r, err := RunnerFor(pt.Family)
		if err != nil {
			t.Fatal(err)
		}
		if r.FamilyID() != pt.Family {
			t.Fatalf("RunnerFor(%q).FamilyID() = %q", pt.Family, r.FamilyID())
		}
		first, err := RunPoint(context.Background(), pt, Observation{})
		if err != nil {
			t.Fatalf("%s: %v", pt.Family, err)
		}
		if err := first.Validate(); err != nil {
			t.Fatalf("%s result invalid: %v", pt.Family, err)
		}
		if first.Family != pt.Family {
			t.Fatalf("point family %q produced result family %q", pt.Family, first.Family)
		}
		second, err := RunPoint(context.Background(), pt, Observation{})
		if err != nil {
			t.Fatalf("%s rerun: %v", pt.Family, err)
		}
		a, _ := json.Marshal(first)
		b, _ := json.Marshal(second)
		if string(a) != string(b) {
			t.Fatalf("%s not deterministic:\n%s\n%s", pt.Family, a, b)
		}
	}
	if _, err := RunnerFor("quantum"); err == nil {
		t.Fatal("RunnerFor accepted unknown family")
	}
}

// recordingExecutor satisfies Executor by running points locally while
// recording what it was handed.
type recordingExecutor struct {
	pts  []Point
	drop int // return this many results short, to test validation
}

func (e *recordingExecutor) RunPoints(ctx context.Context, pts []Point) ([]PointResult, error) {
	e.pts = append(e.pts, pts...)
	out := make([]PointResult, 0, len(pts))
	for _, pt := range pts {
		pr, err := RunPoint(ctx, pt, Observation{})
		if err != nil {
			return nil, err
		}
		out = append(out, pr)
	}
	return out[:len(out)-e.drop], nil
}

// TestRunSpecExecutorSeam checks that a plugged-in Executor receives
// the fully expanded (seed-derived, replication-expanded) points and
// that its results are interchangeable with the in-process pool's.
func TestRunSpecExecutorSeam(t *testing.T) {
	params := []core.Params{tinyParams(11), tinyParams(12)}
	opts := Options{Parallelism: 2, Replications: 2}

	local, err := RunSpec(opts, tinySpec(params))
	if err != nil {
		t.Fatal(err)
	}
	exec := &recordingExecutor{}
	optsX := opts
	optsX.Executor = exec
	remote, err := RunSpec(optsX, tinySpec(params))
	if err != nil {
		t.Fatal(err)
	}
	if want := len(params) * 2; len(exec.pts) != want {
		t.Fatalf("executor saw %d points, want %d (replication-expanded)", len(exec.pts), want)
	}
	a, _ := json.Marshal(local)
	b, _ := json.Marshal(remote)
	if string(a) != string(b) {
		t.Fatalf("executor path differs from local pool:\n%s\n%s", a, b)
	}

	// A short result batch must be rejected, not silently scattered.
	optsX.Executor = &recordingExecutor{drop: 1}
	if _, err := RunSpec(optsX, tinySpec(params)); err == nil {
		t.Fatal("RunSpec accepted an executor result batch of the wrong length")
	}
}

// TestRunSpecReplicationsMerge checks the generic executor merges
// replication groups exactly as merging the individually-run points.
func TestRunSpecReplicationsMerge(t *testing.T) {
	params := []core.Params{tinyParams(21), tinyParams(22)}
	const reps = 2
	opts := Options{Parallelism: 2, Replications: reps}
	merged, err := RunSpec(opts, tinySpec(params))
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != len(params) {
		t.Fatalf("got %d merged results, want %d", len(merged), len(params))
	}
	expanded := expandPoints(opts, tinySpec(params), reps)
	for i := range params {
		group := make([]*core.Results, reps)
		for r := 0; r < reps; r++ {
			pr, err := RunPoint(context.Background(), expanded[i*reps+r], Observation{})
			if err != nil {
				t.Fatal(err)
			}
			group[r] = pr.Core
		}
		want, _ := json.Marshal(core.MergeResults(group))
		got, _ := json.Marshal(merged[i].Core)
		if string(got) != string(want) {
			t.Fatalf("point %d merge mismatch:\n%s\n%s", i, got, want)
		}
	}
}

// TestLookupAndDeprecatedShim checks the typed handle agrees with the
// legacy Run entry.
func TestLookupAndDeprecatedShim(t *testing.T) {
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("Lookup accepted unknown id")
	}
	e, err := Lookup("fig8")
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != "fig8" || e.Title == "" {
		t.Fatalf("Lookup handle incomplete: %+v", e)
	}
	specs := e.Specs(quickOpts())
	if len(specs) == 0 {
		t.Fatal("fig8 has no specs")
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Fatalf("fig8 spec invalid: %v", err)
		}
	}
	viaHandle, err := e.Run(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	viaShim, err := Run("fig8", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	var a, b strings.Builder
	if _, err := viaHandle.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := viaShim.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("deprecated Run shim disagrees with Experiment.Run")
	}
}

// TestEverySpecValidates sanity-checks every registered experiment's
// spec builder at both scales: specs validate, declare points, and
// carry family-consistent parameters.
func TestEverySpecValidates(t *testing.T) {
	for _, id := range IDs() {
		e, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		for _, scale := range []Scale{Quick, Full} {
			for i, s := range e.Specs(Options{Scale: scale, Seed: 7}) {
				if err := s.Validate(); err != nil {
					t.Errorf("%s[%d] @%v: %v", id, i, scale, err)
					continue
				}
				if s.NumPoints() == 0 {
					t.Errorf("%s[%d] @%v: no points", id, i, scale)
				}
				for j := 0; j < s.NumPoints(); j++ {
					if err := s.Point(j).Validate(); err != nil {
						t.Errorf("%s[%d] @%v point %d: %v", id, i, scale, j, err)
					}
				}
			}
		}
	}
}
