package cluster

// The sync client: one per node, coupling the node's fair admitter to
// the shed-state service.
//
// On a jittered interval the client drains the node's sketch delta,
// pushes it (with a monotonic sequence number), and installs the
// aggregate the service replies with. Every failure mode degrades to
// local-only shedding, never an outage: I/O errors close the
// connection and the next tick redials; an aggregate older than
// StaleAfter (service slow, partitioned, or down) clears the cluster
// view; a service still warming after a cold start is not trusted; a
// stale epoch is refused. Re-convergence is idempotent — a delta
// whose ack was lost is re-sent under the same sequence number, which
// the service deduplicates, so demand is never double-counted. New
// demand accrued while disconnected merges into one unsent delta that
// is assigned its sequence number only when first transmitted (a
// possibly-applied in-flight delta is never merged with new demand,
// which would smuggle the new counts under a deduplicated sequence).

import (
	"errors"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/simrng"
	"repro/node"
)

// SyncTarget is the node-side surface the client drives. *node.Node
// implements it; tests substitute fakes.
type SyncTarget interface {
	// TakeAdmissionDelta drains demand counted since the last drain.
	TakeAdmissionDelta() (node.AdmissionDelta, bool)
	// SetClusterAggregate installs the cluster-merged demand view.
	SetClusterAggregate(node.AdmissionAggregate)
	// ClearClusterAggregate returns the node to local-only shedding.
	ClearClusterAggregate()
	// SetAdmissionSalt adopts a rotated salt, forgetting all counted
	// demand.
	SetAdmissionSalt(salt uint64)
}

// ClientConfig configures a sync client. Zero fields take defaults.
type ClientConfig struct {
	// Name identifies the node to the service; it must be stable
	// across restarts of the same node (sequence dedupe is keyed by
	// it) and unique within the cluster. Required.
	Name string
	// Dial opens a connection to the service (memnet stream, TCP, …).
	// Required.
	Dial func() (net.Conn, error)
	// Interval is the base sync period. Default 1s.
	Interval time.Duration
	// Jitter spreads ticks uniformly over Interval±Jitter·Interval so
	// a cluster's pushes do not phase-lock. Default 0.2; clamped to
	// [0, 0.9].
	Jitter float64
	// Timeout bounds one sync round's I/O (dial, hello, push, reply).
	// A slow service is indistinguishable from a dead one past this
	// deadline. Default Interval/2.
	Timeout time.Duration
	// StaleAfter is the fallback deadline: with no aggregate
	// installed for this long, the cluster view is cleared and the
	// node sheds on local state only. Default 3×Interval.
	StaleAfter time.Duration
	// Nonce distinguishes this client instance in the service's
	// sequence records; a restarted node must use a fresh one. 0
	// draws one from the wall clock.
	Nonce uint64
	// Seed makes the jitter sequence reproducible (0 = 1).
	Seed uint64
	// Metrics, when non-nil, receives the guess_node_cluster_* set.
	Metrics *obs.Registry
	// Logf, when non-nil, receives debug logging.
	Logf func(format string, args ...any)
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Jitter == 0 {
		c.Jitter = 0.2
	}
	if c.Jitter < 0 {
		c.Jitter = 0
	}
	if c.Jitter > 0.9 {
		c.Jitter = 0.9
	}
	if c.Timeout <= 0 {
		c.Timeout = c.Interval / 2
	}
	if c.StaleAfter <= 0 {
		c.StaleAfter = 3 * c.Interval
	}
	if c.Nonce == 0 {
		c.Nonce = uint64(time.Now().UnixNano()) | 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ClientStatus is a point-in-time view of the sync state, surfaced by
// /healthz.
type ClientStatus struct {
	// Fallback reports local-only shedding (no trusted aggregate).
	Fallback bool
	// LastPull is when an aggregate was last installed (zero: never).
	LastPull time.Time
	// Epoch and Salt are the salt epoch the node currently hashes
	// under (0 until the first contact with the service).
	Epoch int64
	Salt  uint64
}

// SyncClient keeps one node converged with the shed-state service.
// Create with NewSyncClient; always Close.
type SyncClient struct {
	cfg    ClientConfig
	target SyncTarget
	met    *obs.ClusterMetrics
	rng    *simrng.RNG

	mu   sync.Mutex
	conn net.Conn
	// epoch/salt: the service epoch last adopted (0 = none yet).
	epoch int64
	salt  uint64
	// seq numbers pushes; pendingSeq/pendingDelta is the in-flight
	// (possibly applied, unacked) push re-sent verbatim until acked;
	// unsent accrues demand not yet assigned a sequence number.
	seq          uint64
	pendingSeq   uint64
	pendingDelta node.AdmissionDelta
	unsent       node.AdmissionDelta
	haveUnsent   bool
	// lastPull is when an aggregate was last installed; fallback is
	// the current shedding mode (starts true: a node has no cluster
	// view until its first pull).
	lastPull time.Time
	fallback bool

	closing   chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// NewSyncClient starts a sync client for target.
func NewSyncClient(target SyncTarget, cfg ClientConfig) (*SyncClient, error) {
	cfg = cfg.withDefaults()
	if cfg.Name == "" {
		return nil, errors.New("cluster: sync client needs a Name")
	}
	if len(cfg.Name) > maxNodeName {
		return nil, errors.New("cluster: sync client Name too long")
	}
	if cfg.Dial == nil {
		return nil, errors.New("cluster: sync client needs a Dial function")
	}
	if target == nil {
		return nil, errors.New("cluster: sync client needs a target")
	}
	c := &SyncClient{
		cfg:      cfg,
		target:   target,
		met:      obs.NewClusterMetrics(cfg.Metrics),
		rng:      simrng.New(cfg.Seed).Stream("cluster-sync:" + cfg.Name),
		fallback: true,
		closing:  make(chan struct{}),
	}
	c.met.Fallback.Set(1)
	c.wg.Add(1)
	go c.loop()
	return c, nil
}

// Status returns the current sync state.
func (c *SyncClient) Status() ClientStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ClientStatus{
		Fallback: c.fallback,
		LastPull: c.lastPull,
		Epoch:    c.epoch,
		Salt:     c.salt,
	}
}

// Close stops the client. The node keeps running (local-only
// shedding); Close clears the installed aggregate so a stale cluster
// view cannot outlive its updates.
func (c *SyncClient) Close() error {
	c.closeOnce.Do(func() {
		close(c.closing)
	})
	c.wg.Wait()
	c.mu.Lock()
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	c.mu.Unlock()
	c.target.ClearClusterAggregate()
	return nil
}

func (c *SyncClient) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// loop runs sync rounds on the jittered interval until Close. The
// first round runs immediately so a fresh cluster converges without
// waiting out a full interval.
func (c *SyncClient) loop() {
	defer c.wg.Done()
	for {
		c.syncOnce()
		d := time.Duration(float64(c.cfg.Interval) * (1 + c.cfg.Jitter*(2*c.rng.Float64()-1)))
		select {
		case <-c.closing:
			return
		case <-time.After(d):
		}
	}
}

// syncOnce runs one sync round: drain the node's delta, (re)establish
// the connection, push pending and fresh demand, pull the aggregate,
// and re-evaluate staleness.
func (c *SyncClient) syncOnce() {
	if d, ok := c.target.TakeAdmissionDelta(); ok {
		c.mergeUnsent(d)
	}
	deadline := time.Now().Add(c.cfg.Timeout)
	err := c.round(deadline)
	if err != nil {
		c.met.SyncErrors.Inc()
		c.logf("cluster sync %s: %v", c.cfg.Name, err)
		c.dropConn()
	} else {
		c.met.Syncs.Inc()
	}
	// Deadline check: however the round went, an aggregate that has
	// not refreshed within StaleAfter cannot be trusted — the service
	// may be feeding us ever-staler demand over a half-alive link.
	c.mu.Lock()
	stale := c.lastPull.IsZero() || time.Since(c.lastPull) > c.cfg.StaleAfter
	c.mu.Unlock()
	if stale {
		c.enterFallback()
	}
}

// round performs the I/O of one sync: hello on a fresh connection,
// then pending re-send, fresh push, or a heartbeat pull.
func (c *SyncClient) round(deadline time.Time) error {
	conn, err := c.ensureConn(deadline)
	if err != nil {
		return err
	}
	conn.SetDeadline(deadline)
	pushed := false
	// Re-send the possibly-applied in-flight delta first, verbatim:
	// if the previous ack was lost the service deduplicates by
	// sequence number, so this can never double-count.
	if seq, d, ok := c.takePending(); ok {
		if err := c.exchange(conn, syncMsg{Type: syncPush, Seq: seq, Epoch: c.curEpoch(), Delta: &d}); err != nil {
			return err
		}
		pushed = true
	}
	// Fresh demand gets a new sequence number at first transmission.
	if seq, d, ok := c.promoteUnsent(); ok {
		if err := c.exchange(conn, syncMsg{Type: syncPush, Seq: seq, Epoch: c.curEpoch(), Delta: &d}); err != nil {
			return err
		}
		pushed = true
	}
	if !pushed {
		// Heartbeat: nothing to push, still pull the aggregate.
		if err := c.exchange(conn, syncMsg{Type: syncPush, Seq: 0, Epoch: c.curEpoch()}); err != nil {
			return err
		}
	}
	return nil
}

// ensureConn returns the live connection, dialing and greeting the
// service if there is none.
func (c *SyncClient) ensureConn(deadline time.Time) (net.Conn, error) {
	c.mu.Lock()
	conn := c.conn
	c.mu.Unlock()
	if conn != nil {
		return conn, nil
	}
	conn, err := c.cfg.Dial()
	if err != nil {
		return nil, err
	}
	conn.SetDeadline(deadline)
	if err := writeSyncMsg(conn, syncMsg{Type: syncHello, Node: c.cfg.Name, Nonce: c.cfg.Nonce}); err != nil {
		conn.Close()
		return nil, err
	}
	reply, err := readSyncMsg(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	c.mu.Lock()
	c.conn = conn
	c.mu.Unlock()
	c.handleReply(reply)
	return conn, nil
}

// exchange sends one push and processes the service's reply.
func (c *SyncClient) exchange(conn net.Conn, m syncMsg) error {
	if err := writeSyncMsg(conn, m); err != nil {
		return err
	}
	reply, err := readSyncMsg(conn)
	if err != nil {
		return err
	}
	c.handleReply(reply)
	return nil
}

// handleReply folds one service reply into the client state: acks,
// epoch adoption or stale-epoch refusal, warming, and aggregate
// installation.
func (c *SyncClient) handleReply(m syncMsg) {
	c.mu.Lock()
	// An ack (agg or reject) retires the in-flight delta: applied,
	// deduplicated, or — on reject — counted under a dead salt and
	// therefore meaningless.
	if m.AckSeq != 0 && m.AckSeq == c.pendingSeq {
		c.pendingSeq = 0
		c.pendingDelta = node.AdmissionDelta{}
	}
	switch {
	case m.Epoch > c.epoch:
		// The service rotated (or this is first contact): adopt. All
		// demand counted under the old salt — local sketches, unsent
		// and in-flight deltas — is meaningless under the new one.
		c.epoch = m.Epoch
		c.salt = m.Salt
		c.pendingSeq = 0
		c.pendingDelta = node.AdmissionDelta{}
		c.unsent = node.AdmissionDelta{}
		c.haveUnsent = false
		c.mu.Unlock()
		c.target.SetAdmissionSalt(m.Salt)
		c.met.EpochRotations.Inc()
		c.met.SaltEpoch.Set(float64(m.Epoch))
		c.logf("cluster sync %s: adopted epoch %d", c.cfg.Name, m.Epoch)
	case m.Epoch < c.epoch:
		// The service runs an older epoch than we adopted — it lost
		// state we still hash under. Refuse the aggregate; the
		// service rotates forward when it sees our pushes.
		c.mu.Unlock()
		c.met.StaleEpochs.Inc()
		c.enterFallback()
		return
	default:
		c.mu.Unlock()
	}
	if m.Type != syncAgg {
		return
	}
	if m.Warming {
		// The aggregate is too young to trust (service cold start or
		// fresh rotation); keep shedding on local state.
		c.enterFallback()
		return
	}
	c.target.SetClusterAggregate(*m.Agg)
	now := time.Now()
	c.mu.Lock()
	c.lastPull = now
	c.mu.Unlock()
	c.met.LastPullUnix.Set(float64(now.Unix()))
	c.leaveFallback()
}

// mergeUnsent folds freshly drained demand into the unsent delta
// (saturating).
func (c *SyncClient) mergeUnsent(d node.AdmissionDelta) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for l := range d.Counts {
		for b, v := range d.Counts[l] {
			if v == 0 {
				continue
			}
			if c.unsent.Counts[l][b] > ^uint32(0)-v {
				c.unsent.Counts[l][b] = ^uint32(0)
			} else {
				c.unsent.Counts[l][b] += v
			}
		}
	}
	c.haveUnsent = true
}

// takePending returns the in-flight delta for re-sending, if any.
func (c *SyncClient) takePending() (uint64, node.AdmissionDelta, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pendingSeq == 0 {
		return 0, node.AdmissionDelta{}, false
	}
	return c.pendingSeq, c.pendingDelta, true
}

// promoteUnsent assigns the unsent delta its sequence number and makes
// it the in-flight push.
func (c *SyncClient) promoteUnsent() (uint64, node.AdmissionDelta, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.haveUnsent || c.pendingSeq != 0 {
		return 0, node.AdmissionDelta{}, false
	}
	c.seq++
	c.pendingSeq = c.seq
	c.pendingDelta = c.unsent
	c.unsent = node.AdmissionDelta{}
	c.haveUnsent = false
	return c.pendingSeq, c.pendingDelta, true
}

// curEpoch reads the adopted epoch.
func (c *SyncClient) curEpoch() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// dropConn closes the connection so the next round redials.
func (c *SyncClient) dropConn() {
	c.mu.Lock()
	conn := c.conn
	c.conn = nil
	c.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// enterFallback switches to local-only shedding (idempotent).
func (c *SyncClient) enterFallback() {
	c.mu.Lock()
	was := c.fallback
	c.fallback = true
	c.mu.Unlock()
	if was {
		return
	}
	c.met.Fallbacks.Inc()
	c.met.Fallback.Set(1)
	c.target.ClearClusterAggregate()
	c.logf("cluster sync %s: falling back to local-only shedding", c.cfg.Name)
}

// leaveFallback records recovery to the cluster view (idempotent).
func (c *SyncClient) leaveFallback() {
	c.mu.Lock()
	was := c.fallback
	c.fallback = false
	c.mu.Unlock()
	if !was {
		return
	}
	c.met.Reconnects.Inc()
	c.met.Fallback.Set(0)
	c.logf("cluster sync %s: cluster view restored", c.cfg.Name)
}
