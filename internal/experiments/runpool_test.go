package experiments

import (
	"encoding/json"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

// tinyParams returns a minimal-cost parameter set for scheduling tests.
func tinyParams(seed uint64) core.Params {
	p := core.DefaultParams()
	p.NetworkSize = 30
	p.CacheSize = 5
	p.WarmupTime = 5
	p.MeasureTime = 20
	p.Seed = seed
	return p
}

// tinySpec wraps parameter sets in an unlabeled (never-memoized) GUESS
// sweep spec.
func tinySpec(params []core.Params) Spec {
	return Spec{Family: FamilyGUESS, Core: params}
}

// TestRunSpecPreservesOrderAndSeeding checks that the worker pool
// returns results in input order with per-index seed derivation:
// results must match a serial (Parallelism=1) run point for point.
func TestRunSpecPreservesOrderAndSeeding(t *testing.T) {
	params := make([]core.Params, 9)
	for i := range params {
		params[i] = tinyParams(7)
		params[i].CacheSize = 5 + i // distinguish points
	}
	serial, err := RunSpec(Options{Parallelism: 1}, tinySpec(params))
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := RunSpec(Options{Parallelism: 4}, tinySpec(params))
	if err != nil {
		t.Fatal(err)
	}
	if len(pooled) != len(params) {
		t.Fatalf("got %d results, want %d", len(pooled), len(params))
	}
	for i := range params {
		got, err := json.Marshal(pooled[i])
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(serial[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("point %d: pooled result %s differs from serial %s", i, got, want)
		}
	}
}

// TestRunSpecBoundsGoroutines verifies the pool spawns at most
// min(parallelism, len(points)) workers rather than one goroutine per
// parameter set.
func TestRunSpecBoundsGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	var peak atomic.Int64
	params := make([]core.Params, 24)
	for i := range params {
		params[i] = tinyParams(uint64(i + 1))
	}
	// Sample concurrent goroutine count from inside the runs via the
	// progress writer, which every completed run touches.
	opts := Options{Parallelism: 2, Progress: goroutineSampler{&peak}}
	if _, err := RunSpec(opts, tinySpec(params)); err != nil {
		t.Fatal(err)
	}
	// Allow slack for test-harness goroutines; the point is that 24
	// params with parallelism 2 must not show ~24 extra goroutines.
	if got := peak.Load(); got > int64(before+8) {
		t.Fatalf("peak goroutines %d with 2 workers over %d params (baseline %d): pool is not bounded",
			got, len(params), before)
	}
}

type goroutineSampler struct{ peak *atomic.Int64 }

func (s goroutineSampler) Write(p []byte) (int, error) {
	n := int64(runtime.NumGoroutine())
	for {
		old := s.peak.Load()
		if n <= old || s.peak.CompareAndSwap(old, n) {
			break
		}
	}
	return len(p), nil
}

// TestMemoKeyDistinguishesParams is the satellite's regression test:
// sweeps sharing label, scale, seed, and replications but differing in
// params — or in protocol family — must get distinct memo keys.
func TestMemoKeyDistinguishesParams(t *testing.T) {
	opts := Options{Scale: Quick, Seed: 3, Replications: 2}
	a := []core.Params{tinyParams(1), tinyParams(2)}
	b := []core.Params{tinyParams(1), tinyParams(2)}
	b[1].CacheSize++ // one field differs
	keyA := memoKey("guess", opts, "sweep", paramsDigest(a))
	keyB := memoKey("guess", opts, "sweep", paramsDigest(b))
	if keyA == keyB {
		t.Fatalf("memoKey collision for differing params: %q", keyA)
	}
	// Same params, same key (memoization must still hit).
	if again := memoKey("guess", opts, "sweep", paramsDigest(a)); again != keyA {
		t.Fatalf("memoKey not stable: %q vs %q", again, keyA)
	}
	// Length-prefixing: one sweep of two sets vs two concatenation-
	// ambiguous variants must differ.
	if paramsDigest(a) == paramsDigest(a[:1]) {
		t.Fatal("paramsDigest ignores params length")
	}
	// Other key components still participate.
	if memoKey("guess", Options{Seed: 4}, "sweep", paramsDigest(a)) ==
		memoKey("guess", Options{Seed: 5}, "sweep", paramsDigest(a)) {
		t.Fatal("memoKey ignores seed")
	}
	if memoKey("guess", opts, "x", paramsDigest(a)) == memoKey("guess", opts, "y", paramsDigest(a)) {
		t.Fatal("memoKey ignores label")
	}
	if !strings.Contains(keyA, "sweep|") {
		t.Fatalf("memoKey %q lost its label prefix", keyA)
	}
	// The family discriminator: identical label, options, and digest
	// under different protocol families must never share a cache slot —
	// a cached flood/GUESS sweep must be unreachable from a gossip or
	// DHT lookup with otherwise-identical inputs.
	d := paramsDigest(a)
	if memoKey("guess", opts, "sweep", d) == memoKey("gossip", opts, "sweep", d) {
		t.Fatal("memoKey ignores protocol family (guess vs gossip)")
	}
	if memoKey("gossip", opts, "sweep", d) == memoKey("dht", opts, "sweep", d) {
		t.Fatal("memoKey ignores protocol family (gossip vs dht)")
	}
}
