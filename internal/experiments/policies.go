package experiments

import (
	"fmt"

	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/gnutella"
	"repro/internal/policy"
	"repro/internal/report"
	"repro/internal/simrng"
)

func init() {
	register("fig8", "Figure 8: query cost vs unsatisfaction for fixed, coarse and fine flexible extent", runFig8)
	register("fig9", "Figure 9: probes per query by QueryProbe policy", runFig9)
	register("fig10", "Figure 10: probes per query by QueryPong policy", runFig10)
	register("fig11", "Figure 11: probes per query by CacheReplacement policy", runFig11)
	register("fig12", "Figure 12: unsatisfied queries by QueryPong policy", runFig12)
	register("fig13", "Figure 13: ranked load distribution by policy combination", runFig13)
}

func runFig8(opts Options) (*Result, error) {
	n := 1000
	queries := 3000
	if opts.Scale == Quick {
		n = 400
		queries = 1000
	}
	// Forwarding baselines over a live-peer snapshot sharing the GUESS
	// content model.
	u, err := content.New(opts.baseParams().Content)
	if err != nil {
		return nil, err
	}
	rng := simrng.New(opts.seed()).Stream("fig8")
	pop, err := gnutella.NewPopulation(u, n, rng)
	if err != nil {
		return nil, err
	}

	t := report.NewTable("Figure 8: average query cost vs unsatisfaction",
		"Mechanism", "Config", "AvgCost", "Unsatisfaction")

	extents := []int{1, 2, 5, 10, 20, 50, 100, 150, 200, 300, 400, 540, 700, 850, 1000}
	var fx, fy []float64
	for _, extent := range extents {
		if extent > n {
			continue
		}
		unsat := 0
		for q := 0; q < queries; q++ {
			item := u.DrawQuery(rng)
			if !pop.FixedExtent(rng, item, extent, 1).Satisfied {
				unsat++
			}
		}
		rate := float64(unsat) / float64(queries)
		t.AddRow("FixedExtent", fmt.Sprintf("extent=%d", extent), float64(extent), rate)
		fx = append(fx, float64(extent))
		fy = append(fy, rate)
	}

	batches := gnutella.DefaultDeepeningBatches(n)
	idCost, idUnsat := 0, 0
	for q := 0; q < queries; q++ {
		item := u.DrawQuery(rng)
		res := pop.IterativeDeepening(rng, item, batches, 1)
		idCost += res.Probes
		if !res.Satisfied {
			idUnsat++
		}
	}
	idAvgCost := float64(idCost) / float64(queries)
	idRate := float64(idUnsat) / float64(queries)
	t.AddRow("IterativeDeepening", fmt.Sprintf("batches=%v", batches), idAvgCost, idRate)

	// GUESS points: Random baseline and QueryPong=MFS.
	base := opts.baseParams()
	base.NetworkSize = n
	mfs := base
	mfs.QueryPong = policy.SelMFS
	results, err := runAll(opts, []core.Params{base, mfs})
	if err != nil {
		return nil, err
	}
	gr, gm := results[0], results[1]
	t.AddRow("GUESS", "Random baseline", gr.ProbesPerQuery(), gr.UnsatisfactionWithAborted())
	t.AddRow("GUESS", "QueryPong=MFS", gm.ProbesPerQuery(), gm.UnsatisfactionWithAborted())

	chart := report.NewChart("Figure 8", "Average query cost (probes)", "Unsatisfied queries")
	if err := chart.Add(report.Series{Name: "Fixed extent", X: fx, Y: fy}); err != nil {
		return nil, err
	}
	if err := chart.Add(report.Series{Name: "Iterative deepening", X: []float64{idAvgCost}, Y: []float64{idRate}}); err != nil {
		return nil, err
	}
	if err := chart.Add(report.Series{
		Name: "GUESS (Random, MFS)",
		X:    []float64{gr.ProbesPerQuery(), gm.ProbesPerQuery()},
		Y:    []float64{gr.UnsatisfactionWithAborted(), gm.UnsatisfactionWithAborted()},
	}); err != nil {
		return nil, err
	}
	return &Result{Tables: []*report.Table{t}, Charts: []*report.Chart{chart}}, nil
}

// selectionSweep runs one simulation per selection policy with the
// given field set, everything else at defaults. Sweeps are memoized
// under the swept field's name: Figures 10 and 12 are two projections
// of the identical QueryPong sweep, so the second figure is free.
func selectionSweep(opts Options, field string, set func(*core.Params, policy.Selection)) ([]policy.Selection, []*core.Results, error) {
	policies := []policy.Selection{
		policy.SelRandom, policy.SelMRU, policy.SelLRU, policy.SelMFS, policy.SelMR,
	}
	params := make([]core.Params, len(policies))
	for i, sel := range policies {
		p := opts.baseParams()
		set(&p, sel)
		params[i] = p
	}
	results, err := runAllMemo(opts, "selectionSweep:"+field, params)
	if err != nil {
		return nil, nil, err
	}
	return policies, results, nil
}

func probesByPolicyTable(title string, policies []policy.Selection, results []*core.Results) *report.Table {
	t := report.NewTable(title, "Policy", "GoodProbes", "DeadProbes", "TotalProbes")
	for i, sel := range policies {
		r := results[i]
		t.AddRow(sel.String(), r.GoodProbesPerQuery(), r.DeadProbesPerQuery(), r.ProbesPerQuery())
	}
	return t
}

func runFig9(opts Options) (*Result, error) {
	policies, results, err := selectionSweep(opts, "QueryProbe", func(p *core.Params, s policy.Selection) {
		p.QueryProbe = s
	})
	if err != nil {
		return nil, err
	}
	t := probesByPolicyTable("Figure 9: probes per query by QueryProbe policy", policies, results)
	return &Result{Tables: []*report.Table{t}}, nil
}

func runFig10(opts Options) (*Result, error) {
	policies, results, err := selectionSweep(opts, "QueryPong", func(p *core.Params, s policy.Selection) {
		p.QueryPong = s
	})
	if err != nil {
		return nil, err
	}
	t := probesByPolicyTable("Figure 10: probes per query by QueryPong policy", policies, results)
	return &Result{Tables: []*report.Table{t}}, nil
}

func runFig11(opts Options) (*Result, error) {
	evictions := []policy.Eviction{
		policy.EvRandom, policy.EvLRU, policy.EvMRU, policy.EvLFS, policy.EvLR,
	}
	params := make([]core.Params, len(evictions))
	for i, ev := range evictions {
		p := opts.baseParams()
		p.CacheReplacement = ev
		params[i] = p
	}
	results, err := runAllMemo(opts, "evictionSweep:CacheReplacement", params)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 11: probes per query by CacheReplacement policy",
		"Policy", "GoodProbes", "DeadProbes", "TotalProbes")
	for i, ev := range evictions {
		r := results[i]
		t.AddRow(ev.String(), r.GoodProbesPerQuery(), r.DeadProbesPerQuery(), r.ProbesPerQuery())
	}
	return &Result{Tables: []*report.Table{t}}, nil
}

func runFig12(opts Options) (*Result, error) {
	policies, results, err := selectionSweep(opts, "QueryPong", func(p *core.Params, s policy.Selection) {
		p.QueryPong = s
	})
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 12: unsatisfied queries by QueryPong policy",
		"Policy", "Unsatisfaction")
	for i, sel := range policies {
		t.AddRow(sel.String(), results[i].UnsatisfactionWithAborted())
	}
	return &Result{Tables: []*report.Table{t}}, nil
}

func runFig13(opts Options) (*Result, error) {
	combos := []struct {
		name  string
		probe policy.Selection
		repl  policy.Eviction
	}{
		{"Random/Random", policy.SelRandom, policy.EvRandom},
		{"MFS/LFS", policy.SelMFS, policy.EvLFS},
		{"MR/LR", policy.SelMR, policy.EvLR},
		{"MRU/LRU", policy.SelMRU, policy.EvLRU},
	}
	params := make([]core.Params, len(combos))
	for i, c := range combos {
		p := opts.baseParams()
		p.QueryProbe = c.probe
		p.CacheReplacement = c.repl
		params[i] = p
	}
	results, err := runAll(opts, params)
	if err != nil {
		return nil, err
	}
	ranks := []int{1, 2, 3, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000}
	cols := []string{"Rank"}
	for _, c := range combos {
		cols = append(cols, c.name)
	}
	t := report.NewTable("Figure 13: probes received by peer rank", cols...)
	ranked := make([][]int64, len(combos))
	for i := range combos {
		ranked[i] = results[i].RankedLoads()
	}
	for _, rank := range ranks {
		row := make([]any, 0, len(cols))
		row = append(row, rank)
		filled := false
		for i := range combos {
			if rank <= len(ranked[i]) {
				row = append(row, ranked[i][rank-1])
				filled = true
			} else {
				row = append(row, "-")
			}
		}
		if !filled {
			break
		}
		t.AddRow(row...)
	}
	// Also report total load, showing the fairness/efficiency trade-off.
	totals := make([]any, 0, len(cols))
	totals = append(totals, "total")
	for i := range combos {
		totals = append(totals, results[i].TotalLoad())
	}
	t.AddRow(totals...)
	return &Result{Tables: []*report.Table{t}}, nil
}
