package obs

// MemnetMetrics binds the in-memory network's packet-fate counters
// (guess_memnet_*) and backs memnet's Stats snapshot. As with the
// Stats struct, drop causes are disjoint per enqueued copy:
//
//	Sent + Duplicated == Delivered + Dropped + Blocked + QueueDrop
type MemnetMetrics struct {
	Sent       *Counter
	Delivered  *Counter
	Dropped    *Counter
	Duplicated *Counter
	Reordered  *Counter
	Truncated  *Counter
	Blocked    *Counter
	QueueDrop  *Counter
}

// NewMemnetMetrics registers the memnet metric set in reg. A nil
// registry is replaced with a private one, so the returned instruments
// are always usable.
func NewMemnetMetrics(reg *Registry) *MemnetMetrics {
	if reg == nil {
		reg = NewRegistry()
	}
	return &MemnetMetrics{
		Sent:       reg.Counter("guess_memnet_sent_total", "Packets entering the network (one per WriteTo)."),
		Delivered:  reg.Counter("guess_memnet_delivered_total", "Copies enqueued at their destination."),
		Dropped:    reg.Counter("guess_memnet_dropped_total", "Packets lost to the Loss probability."),
		Duplicated: reg.Counter("guess_memnet_duplicated_total", "Extra copies created by DupProb."),
		Reordered:  reg.Counter("guess_memnet_reordered_total", "Packets held back by ReorderProb."),
		Truncated:  reg.Counter("guess_memnet_truncated_total", "Packets cut down to the link MTU."),
		Blocked:    reg.Counter("guess_memnet_blocked_total", "Packets dropped by blocked links or isolated endpoints."),
		QueueDrop:  reg.Counter("guess_memnet_queue_drop_total", "Copies dropped at a full or closed destination queue."),
	}
}
