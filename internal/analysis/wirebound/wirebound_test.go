package wirebound_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/wirebound"
)

// TestFindings checks that allocations sized by unbounded wire lengths
// are flagged — from binary decodes, byte indexing, and decode
// helpers — while comparisons, min clamps, suppressions, and
// wire-free sizes pass. It also pins the framework's stale-suppression
// sweep: a directive with nothing to suppress is itself a finding.
func TestFindings(t *testing.T) {
	analysistest.Run(t, "testdata/src/conc", "repro/node", wirebound.Analyzer)
}
