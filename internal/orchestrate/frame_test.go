package orchestrate

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		[]byte("x"),
		bytes.Repeat([]byte("abc"), 10000),
	}
	var buf bytes.Buffer
	for _, p := range payloads {
		if err := writeFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range payloads {
		got, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(p))
		}
	}
	if _, err := readFrame(&buf); err != io.EOF {
		t.Fatalf("after last frame: err = %v, want io.EOF", err)
	}
}

// TestFrameCorruptRejected checks the receive side refuses damaged
// frames instead of handing garbage to the JSON decoder.
func TestFrameCorruptRejected(t *testing.T) {
	frame := func() []byte {
		var buf bytes.Buffer
		if err := writeFrame(&buf, []byte(`{"type":"hello","worker":"w"}`)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	flipPayload := frame()
	flipPayload[len(flipPayload)-1] ^= 0x01
	if _, err := readFrame(bytes.NewReader(flipPayload)); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("flipped payload byte: err = %v, want ErrFrameCorrupt", err)
	}

	flipCRC := frame()
	flipCRC[5] ^= 0x80
	if _, err := readFrame(bytes.NewReader(flipCRC)); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("flipped checksum byte: err = %v, want ErrFrameCorrupt", err)
	}
}

// TestFrameShortRejected checks truncation at every boundary surfaces
// as an unexpected EOF (distinct from a clean close before a frame).
func TestFrameShortRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for _, cut := range []int{1, 4, 7, len(whole) - 1} {
		if _, err := readFrame(bytes.NewReader(whole[:cut])); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("truncated at %d: err = %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
	if _, err := readFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty stream: err = %v, want io.EOF", err)
	}
}

// TestFrameTooLargeRejected checks a corrupt header cannot provoke a
// huge allocation.
func TestFrameTooLargeRejected(t *testing.T) {
	var head [8]byte
	binary.BigEndian.PutUint32(head[0:4], maxFramePayload+1)
	if _, err := readFrame(bytes.NewReader(head[:])); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize header: err = %v, want ErrFrameTooLarge", err)
	}
}

// TestMessageValidation checks recvMsg enforces the envelope contract.
func TestMessageValidation(t *testing.T) {
	cases := []struct {
		name string
		m    message
	}{
		{"unknown type", message{Type: "quantum"}},
		{"hello without name", message{Type: msgHello}},
		{"unit without unit", message{Type: msgUnit}},
		{"result without result", message{Type: msgResult}},
		{"error without error", message{Type: msgError, UnitID: 3}},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		if err := sendMsg(&buf, tc.m); err != nil {
			t.Fatalf("%s: send: %v", tc.name, err)
		}
		if _, err := recvMsg(&buf); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
	}
}

// goldenMessages is a fixed protocol exchange: hello, one flood unit,
// its result. Flood parameters keep the fixture small and entirely
// within the experiments package's own types.
func goldenMessages(t *testing.T) []message {
	t.Helper()
	fp := experiments.DefaultFloodParams()
	fp.NetworkSize = 16
	fp.AvgDegree = 3
	fp.NumQueries = 4
	pt := experiments.Point{Family: experiments.FamilyFlood, Flood: &fp}
	return []message{
		{Type: msgHello, Worker: "golden-worker"},
		{Type: msgUnit, Unit: &workUnit{ID: 0, Key: pt.Key(), Point: pt}},
		{Type: msgResult, Result: &unitResult{
			ID:  0,
			Key: pt.Key(),
			Result: experiments.PointResult{
				Family: experiments.FamilyFlood,
				Flood: &experiments.FloodResults{
					Queries: 4, Satisfied: 3, Unsatisfied: 1,
					Messages: 120, PeerLoads: []int64{7, 8, 9},
				},
			},
		}},
		{Type: msgError, UnitID: 0, Error: "synthetic failure"},
	}
}

// TestGoldenFrames pins the wire format: the exact bytes of a fixed
// exchange, hex-dumped under testdata/. Any framing or encoding change
// shows up as a reviewable golden diff — and means old workers and new
// coordinators no longer interoperate. Regenerate with
// `go test ./internal/orchestrate -run Golden -update`.
func TestGoldenFrames(t *testing.T) {
	var wire bytes.Buffer
	for _, m := range goldenMessages(t) {
		if err := sendMsg(&wire, m); err != nil {
			t.Fatal(err)
		}
	}
	dump := hexDump(wire.Bytes())

	path := filepath.Join("testdata", "golden_frames.hex")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(dump), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if dump != string(want) {
		t.Fatalf("wire frames changed; run with -update after an intentional protocol change\ngot:\n%s\nwant:\n%s", dump, want)
	}

	// The golden bytes decode back to the same messages.
	r := bytes.NewReader(wire.Bytes())
	for i, m := range goldenMessages(t) {
		got, err := recvMsg(r)
		if err != nil {
			t.Fatalf("decoding golden message %d: %v", i, err)
		}
		a, _ := json.Marshal(got)
		b, _ := json.Marshal(m)
		if !bytes.Equal(a, b) {
			t.Fatalf("golden message %d changed in flight:\n%s\n%s", i, a, b)
		}
	}
}

// hexDump renders bytes as 32-hex-digit lines, stable and diffable.
func hexDump(b []byte) string {
	const width = 16
	var sb strings.Builder
	for i := 0; i < len(b); i += width {
		end := i + width
		if end > len(b) {
			end = len(b)
		}
		sb.WriteString(hex.EncodeToString(b[i:end]))
		sb.WriteByte('\n')
	}
	return sb.String()
}
