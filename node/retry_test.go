package node

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"repro/internal/wire"
	"repro/node/memnet"
)

// fakeBusyPeer runs a minimal protocol speaker that answers every
// request with Busy — an always-overloaded peer.
func fakeBusyPeer(t *testing.T, nw *memnet.Network) netip.AddrPort {
	t.Helper()
	c := nw.Listen()
	t.Cleanup(func() { c.Close() })
	go func() {
		buf := make([]byte, wire.MaxPacket)
		for {
			n, from, err := c.ReadFrom(buf)
			if err != nil {
				return
			}
			msg, err := wire.Decode(buf[:n])
			if err != nil {
				continue
			}
			pkt, err := wire.Encode(&wire.Busy{MsgID: msg.ID()})
			if err != nil {
				continue
			}
			c.WriteTo(pkt, from)
		}
	}()
	return c.AddrPort()
}

// TestBusyDemotionSuppressesThenEvicts: with BusyBackoff enabled a
// refusing peer is first demoted (kept in the cache but not probed),
// and only evicted after BusyEvictAfter consecutive refusals.
func TestBusyDemotionSuppressesThenEvicts(t *testing.T) {
	nw := memnet.New(1)
	querier := startMemNode(t, nw, Config{
		ProbeTimeout:   50 * time.Millisecond,
		BusyBackoff:    40 * time.Millisecond,
		BusyBackoffMax: 200 * time.Millisecond,
		BusyEvictAfter: 2,
		PingInterval:   time.Hour,
	})
	busy := fakeBusyPeer(t, nw)
	querier.AddPeer(busy, 5)

	// First refusal: demoted, not evicted.
	_, qs, err := querier.Query(context.Background(), "anything", 1)
	if err != nil {
		t.Fatal(err)
	}
	if qs.Refused != 1 {
		t.Fatalf("stats = %+v, want one refusal", qs)
	}
	if querier.CacheLen() != 1 {
		t.Fatal("busy peer evicted on first refusal despite BusyBackoff")
	}
	if querier.Stats().BusyBackoffs != 1 {
		t.Fatalf("BusyBackoffs = %d, want 1", querier.Stats().BusyBackoffs)
	}

	// While suppressed, the peer is not probed at all.
	_, qs, err = querier.Query(context.Background(), "anything", 1)
	if err != nil {
		t.Fatal(err)
	}
	if qs.Probes != 0 {
		t.Fatalf("suppressed peer was probed: %+v", qs)
	}

	// After the backoff expires, the next refusal crosses
	// BusyEvictAfter and evicts.
	time.Sleep(60 * time.Millisecond)
	_, qs, err = querier.Query(context.Background(), "anything", 1)
	if err != nil {
		t.Fatal(err)
	}
	if qs.Refused != 1 {
		t.Fatalf("stats = %+v, want a refusal after backoff expiry", qs)
	}
	if querier.CacheLen() != 0 {
		t.Fatal("busy peer not evicted after BusyEvictAfter refusals")
	}
}

// TestBusyWithoutBackoffEvictsImmediately pins the legacy no-backoff
// default the simulator models: first Busy drops the peer.
func TestBusyWithoutBackoffEvictsImmediately(t *testing.T) {
	nw := memnet.New(1)
	querier := startMemNode(t, nw, Config{
		ProbeTimeout: 50 * time.Millisecond,
		PingInterval: time.Hour,
	})
	busy := fakeBusyPeer(t, nw)
	querier.AddPeer(busy, 5)
	_, qs, err := querier.Query(context.Background(), "anything", 1)
	if err != nil {
		t.Fatal(err)
	}
	if qs.Refused != 1 || querier.CacheLen() != 0 {
		t.Fatalf("no-backoff Busy did not evict: %+v cache=%d", qs, querier.CacheLen())
	}
}

// TestAdaptiveTimeoutShortensDeadDetection: after learning a fast RTT,
// the adaptive deadline detects a dead peer far sooner than the
// configured ProbeTimeout.
func TestAdaptiveTimeoutShortensDeadDetection(t *testing.T) {
	nw := memnet.New(1)
	nw.SetLatency(2 * time.Millisecond)
	sharer := startMemNode(t, nw, Config{PingInterval: time.Hour, Seed: 2})
	querier := startMemNode(t, nw, Config{
		ProbeTimeout:     800 * time.Millisecond,
		MaxProbeAttempts: 1,
		AdaptiveTimeout:  true,
		PingInterval:     time.Hour,
	})
	// Learn the network's RTT from a few pings.
	for i := 0; i < 4; i++ {
		ok, err := querier.PingPeer(context.Background(), sharer.Addr())
		if err != nil || !ok {
			t.Fatalf("ping %d: ok=%v err=%v", i, ok, err)
		}
	}

	dead := nw.Listen()
	deadAddr := dead.AddrPort()
	dead.Close()
	querier.AddPeer(deadAddr, 1)

	start := time.Now()
	_, qs, err := querier.Query(context.Background(), "anything", 1)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if qs.Dead != 1 {
		t.Fatalf("dead peer not detected: %+v", qs)
	}
	// The clamp floor is ProbeTimeout/8 = 100ms; anything well under
	// the 800ms fixed deadline proves the EWMA took over.
	if elapsed > 400*time.Millisecond {
		t.Fatalf("adaptive timeout did not shorten detection: %v", elapsed)
	}
}

// TestRetryRecoversFromSingleDrop: a link that drops exactly the first
// packet forces one retry which then succeeds, and the retry is
// accounted in both query and node stats.
func TestRetryRecoversFromSingleDrop(t *testing.T) {
	nw := memnet.New(1)
	sharer := startMemNode(t, nw, Config{
		Files:        []string{"second try.txt"},
		PingInterval: time.Hour,
		Seed:         2,
	})
	querier := startMemNode(t, nw, Config{
		ProbeTimeout:     40 * time.Millisecond,
		MaxProbeAttempts: 3,
		RetryBackoff:     5 * time.Millisecond,
		RetryBackoffMax:  20 * time.Millisecond,
		PingInterval:     time.Hour,
	})
	// Drop the querier's first transmission only.
	nw.SetLink(querier.Addr(), sharer.Addr(), memnet.LinkProfile{Loss: 1})
	go func() {
		time.Sleep(60 * time.Millisecond)
		nw.ClearLink(querier.Addr(), sharer.Addr())
	}()
	querier.AddPeer(sharer.Addr(), 1)

	hits, qs, err := querier.Query(context.Background(), "second try", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Fatalf("retry did not recover: %+v", qs)
	}
	if qs.Retries < 1 {
		t.Fatalf("retry not counted: %+v", qs)
	}
	if querier.Stats().Retries < 1 {
		t.Fatal("node retry counter not incremented")
	}
}
