package wire

import (
	"errors"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func entry(ip string, port uint16, files uint32, res uint16) PongEntry {
	return PongEntry{
		Addr:     netip.AddrPortFrom(netip.MustParseAddr(ip), port),
		NumFiles: files,
		NumRes:   res,
	}
}

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	pkt, err := Encode(m)
	if err != nil {
		t.Fatalf("Encode(%v): %v", m.Type(), err)
	}
	if len(pkt) > MaxPacket {
		t.Fatalf("packet %d bytes exceeds MaxPacket", len(pkt))
	}
	got, err := Decode(pkt)
	if err != nil {
		t.Fatalf("Decode(%v): %v", m.Type(), err)
	}
	return got
}

func TestRoundTrips(t *testing.T) {
	tests := []Message{
		&Ping{MsgID: 42, NumFiles: 1234},
		&Pong{MsgID: 7},
		&Pong{MsgID: 7, Entries: []PongEntry{
			entry("10.0.0.1", 6346, 100, 2),
			entry("2001:db8::1", 9999, 0, 0),
		}},
		&Query{MsgID: 1, Desired: 3, NumFiles: 55, Keyword: "free bird"},
		&Query{MsgID: 1, Desired: 0, NumFiles: 0, Keyword: ""},
		&QueryHit{MsgID: 9, Results: []string{"free bird.mp3", "freebird live.ogg"},
			Pong: []PongEntry{entry("192.168.1.2", 6346, 9, 1)}},
		&QueryHit{MsgID: 9},
		&Busy{MsgID: 1<<64 - 1},
	}
	for _, m := range tests {
		t.Run(m.Type().String(), func(t *testing.T) {
			got := roundTrip(t, m)
			if !reflect.DeepEqual(normalize(got), normalize(m)) {
				t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", got, m)
			}
		})
	}
}

// normalize maps empty slices to nil for comparison.
func normalize(m Message) Message {
	switch v := m.(type) {
	case *Pong:
		if len(v.Entries) == 0 {
			return &Pong{MsgID: v.MsgID}
		}
	case *QueryHit:
		cp := *v
		if len(cp.Results) == 0 {
			cp.Results = nil
		}
		if len(cp.Pong) == 0 {
			cp.Pong = nil
		}
		return &cp
	}
	return m
}

func TestEncodeLimits(t *testing.T) {
	longName := strings.Repeat("x", MaxNameLen+1)
	manyEntries := make([]PongEntry, MaxPongEntries+1)
	for i := range manyEntries {
		manyEntries[i] = entry("10.0.0.1", 1, 1, 1)
	}
	manyHits := make([]string, MaxHits+1)
	for i := range manyHits {
		manyHits[i] = "f"
	}
	tests := []struct {
		name string
		m    Message
	}{
		{"long keyword", &Query{Keyword: longName}},
		{"too many pong entries", &Pong{Entries: manyEntries}},
		{"too many hits", &QueryHit{Results: manyHits}},
		{"long result name", &QueryHit{Results: []string{longName}}},
		{"invalid address", &Pong{Entries: []PongEntry{{}}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Encode(tt.m); err == nil {
				t.Fatal("Encode accepted over-limit message")
			}
		})
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	valid, err := Encode(&Ping{MsgID: 1, NumFiles: 2})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		pkt  []byte
	}{
		{"empty", nil},
		{"short", valid[:5]},
		{"bad magic", append([]byte{'X', 'U'}, valid[2:]...)},
		{"bad version", append([]byte{'G', 'U', 99}, valid[3:]...)},
		{"bad type", func() []byte {
			p := append([]byte(nil), valid...)
			p[3] = 99
			return p
		}()},
		{"truncated payload", valid[:len(valid)-1]},
		{"trailing bytes", append(append([]byte(nil), valid...), 0)},
		{"lying length", func() []byte {
			p := append([]byte(nil), valid...)
			p[13]++
			return p
		}()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Decode(tt.pkt); !errors.Is(err, ErrMalformed) {
				t.Fatalf("Decode = %v, want ErrMalformed", err)
			}
		})
	}
}

func TestDecodeTruncatedStructures(t *testing.T) {
	// A pong whose declared entry count exceeds the bytes present.
	pkt, err := Encode(&Pong{MsgID: 1, Entries: []PongEntry{entry("10.0.0.1", 1, 1, 1)}})
	if err != nil {
		t.Fatal(err)
	}
	p := append([]byte(nil), pkt...)
	p[HeaderSize] = 5 // claim 5 entries
	if _, err := Decode(p); !errors.Is(err, ErrMalformed) {
		t.Fatalf("Decode = %v, want ErrMalformed", err)
	}
}

// TestDecodeNeverPanics fuzzes the decoder with random bytes; it must
// return an error or a message, never panic.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Decode panicked on %x: %v", data, r)
			}
		}()
		_, _ = Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeNeverPanicsOnMutations flips bytes of valid packets.
func TestDecodeNeverPanicsOnMutations(t *testing.T) {
	msgs := []Message{
		&Pong{MsgID: 3, Entries: []PongEntry{entry("10.1.2.3", 80, 7, 1), entry("2001:db8::2", 8080, 1, 0)}},
		&QueryHit{MsgID: 4, Results: []string{"a", "bb"}, Pong: []PongEntry{entry("1.2.3.4", 5, 6, 7)}},
	}
	for _, m := range msgs {
		pkt, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(pkt); i++ {
			for _, delta := range []byte{1, 0x7f, 0xff} {
				mutated := append([]byte(nil), pkt...)
				mutated[i] ^= delta
				_, _ = Decode(mutated) // must not panic
			}
		}
	}
}

func TestTypeString(t *testing.T) {
	names := map[Type]string{
		TypePing: "Ping", TypePong: "Pong", TypeQuery: "Query",
		TypeQueryHit: "QueryHit", TypeBusy: "Busy", Type(77): "Type(77)",
	}
	for typ, want := range names {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
}

func BenchmarkEncodePong(b *testing.B) {
	m := &Pong{MsgID: 1, Entries: []PongEntry{
		entry("10.0.0.1", 6346, 100, 2),
		entry("10.0.0.2", 6346, 3, 0),
		entry("10.0.0.3", 6346, 88, 1),
		entry("10.0.0.4", 6346, 12, 0),
		entry("10.0.0.5", 6346, 0, 0),
	}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodePong(b *testing.B) {
	m := &Pong{MsgID: 1, Entries: []PongEntry{
		entry("10.0.0.1", 6346, 100, 2),
		entry("10.0.0.2", 6346, 3, 0),
	}}
	pkt, err := Encode(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(pkt); err != nil {
			b.Fatal(err)
		}
	}
}
