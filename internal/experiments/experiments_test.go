package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestIDsCoverEveryPaperArtifact(t *testing.T) {
	want := []string{
		"table3", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
		"fig17", "fig18", "fig19", "fig20", "fig21",
		// Extensions and ablations beyond the paper's figures.
		"abl-introprob", "abl-pongsize", "cmp-families", "ext-adaptive",
		"ext-detection", "ext-selfish",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs() = %v, want %d experiments", got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs()[%d] = %q, want %q (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestTitles(t *testing.T) {
	for _, id := range IDs() {
		title, err := Title(id)
		if err != nil || title == "" {
			t.Fatalf("Title(%q) = %q, %v", id, title, err)
		}
	}
	if _, err := Title("nope"); err == nil {
		t.Fatal("Title accepted unknown id")
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", Options{}); err == nil {
		t.Fatal("Run accepted unknown id")
	}
}

// quickOpts keeps experiment smoke tests fast.
func quickOpts() Options {
	return Options{Scale: Quick, Seed: 7}
}

// skipHeavy gates the long simulation sweeps out of -short runs. The
// Makefile's race target uses -short: the race detector's ~20x
// slowdown turns the full battery into a multi-ten-minute run, so only
// the cheapest sweeps stay on to cover the worker-pool concurrency.
func skipHeavy(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("heavy simulation sweep; skipped with -short")
	}
}

func checkResult(t *testing.T, id string, res *Result) {
	t.Helper()
	if res.ID != id {
		t.Fatalf("result ID %q, want %q", res.ID, id)
	}
	if res.Title == "" {
		t.Fatal("empty title")
	}
	if len(res.Tables) == 0 {
		t.Fatal("no tables")
	}
	for _, tb := range res.Tables {
		if tb.NumRows() == 0 {
			t.Fatalf("table %q has no rows", tb.Title)
		}
	}
	var b strings.Builder
	if _, err := res.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() == 0 {
		t.Fatal("WriteTo produced nothing")
	}
}

func TestRunTable3(t *testing.T) {
	skipHeavy(t)
	res, err := Run("table3", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, "table3", res)
	rows := res.Tables[0].Rows()
	if len(rows) != 6 {
		t.Fatalf("table3 has %d rows, want 6", len(rows))
	}
	// Fraction live must decrease from the smallest to the largest
	// cache size (the paper's core Table 3 observation).
	first, last := rows[0][1], rows[len(rows)-1][1]
	if first <= last {
		t.Fatalf("fraction live did not fall with cache size: %s -> %s", first, last)
	}
}

func TestRunFig5ShapesHold(t *testing.T) {
	skipHeavy(t)
	res, err := Run("fig5", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, "fig5", res)
}

func TestRunFig8GuessBeatsFixedExtent(t *testing.T) {
	res, err := Run("fig8", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, "fig8", res)
	// The table must contain all four mechanisms.
	var mechanisms []string
	for _, row := range res.Tables[0].Rows() {
		mechanisms = append(mechanisms, row[0])
	}
	joined := strings.Join(mechanisms, ",")
	for _, want := range []string{"FixedExtent", "IterativeDeepening", "GUESS"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("fig8 missing mechanism %s", want)
		}
	}
}

func TestRunFig12(t *testing.T) {
	skipHeavy(t)
	res, err := Run("fig12", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, "fig12", res)
	if got := len(res.Tables[0].Rows()); got != 5 {
		t.Fatalf("fig12 rows = %d, want 5 policies", got)
	}
}

func TestRunFig13(t *testing.T) {
	skipHeavy(t)
	res, err := Run("fig13", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, "fig13", res)
	// 5 columns: rank + 4 combos.
	if got := len(res.Tables[0].Columns); got != 5 {
		t.Fatalf("fig13 columns = %d, want 5", got)
	}
}

func TestRunFig15(t *testing.T) {
	skipHeavy(t)
	res, err := Run("fig15", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, "fig15", res)
}

func TestRunFig17PoisoningHurts(t *testing.T) {
	skipHeavy(t)
	res, err := Run("fig17", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, "fig17", res)
	// MFS at 20% bad must be worse than MFS at 0% bad.
	rows := res.Tables[0].Rows()
	var mfs0, mfs20 string
	for _, row := range rows {
		if row[0] == "MFS" && row[1] == "0" {
			mfs0 = row[2]
		}
		if row[0] == "MFS" && row[1] == "20" {
			mfs20 = row[2]
		}
	}
	if mfs0 == "" || mfs20 == "" {
		t.Fatalf("MFS rows missing: %v", rows)
	}
	a, err := strconv.ParseFloat(mfs0, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := strconv.ParseFloat(mfs20, 64)
	if err != nil {
		t.Fatal(err)
	}
	if b <= a {
		t.Fatalf("MFS unsatisfaction did not rise under poisoning: %v -> %v", a, b)
	}
}

func TestProgressWriter(t *testing.T) {
	skipHeavy(t)
	var b strings.Builder
	opts := quickOpts()
	opts.Progress = &b
	// fig6 goes through the non-memoized runAll path, so its runs (and
	// progress lines) can never be absorbed by another test's cached
	// sweep.
	if _, err := Run("fig6", opts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "done") {
		t.Fatal("no progress lines written")
	}
}

func TestRunFig3AndFig4ShareSweep(t *testing.T) {
	skipHeavy(t)
	res3, err := Run("fig3", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, "fig3", res3)
	// Figure 4 projects the identical cache sweep; after fig3 it must
	// come from the memo and agree row for row on the sweep grid.
	res4, err := Run("fig4", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, "fig4", res4)
	r3, r4 := res3.Tables[0].Rows(), res4.Tables[0].Rows()
	if len(r3) != len(r4) {
		t.Fatalf("fig3 has %d rows, fig4 has %d; same sweep should give the same grid", len(r3), len(r4))
	}
	for i := range r3 {
		if r3[i][0] != r4[i][0] || r3[i][1] != r4[i][1] {
			t.Fatalf("row %d grid mismatch: fig3 %v vs fig4 %v", i, r3[i], r4[i])
		}
	}
}

func TestRunFig6(t *testing.T) {
	skipHeavy(t)
	res, err := Run("fig6", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, "fig6", res)
	// Quick scale: 3 cache sizes x 4 ping intervals.
	if got := len(res.Tables[0].Rows()); got != 12 {
		t.Fatalf("fig6 rows = %d, want 12", got)
	}
}

func TestRunFig7(t *testing.T) {
	skipHeavy(t)
	res, err := Run("fig7", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, "fig7", res)
	// Quick scale: 2 network sizes x 4 ping intervals; the relative
	// component column must be a fraction of the network.
	rows := res.Tables[0].Rows()
	if len(rows) != 8 {
		t.Fatalf("fig7 rows = %d, want 8", len(rows))
	}
	for _, row := range rows {
		rel, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if rel <= 0 || rel > 1 {
			t.Fatalf("fig7 relative WCC %v outside (0,1]: %v", rel, row)
		}
	}
}

func TestRunFig9(t *testing.T) {
	skipHeavy(t)
	res, err := Run("fig9", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, "fig9", res)
	if got := len(res.Tables[0].Rows()); got != 5 {
		t.Fatalf("fig9 rows = %d, want 5 policies", got)
	}
}

func TestRunFig10(t *testing.T) {
	skipHeavy(t)
	res, err := Run("fig10", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, "fig10", res)
	if got := len(res.Tables[0].Rows()); got != 5 {
		t.Fatalf("fig10 rows = %d, want 5 policies", got)
	}
}

func TestRunFig11(t *testing.T) {
	skipHeavy(t)
	res, err := Run("fig11", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, "fig11", res)
	if got := len(res.Tables[0].Rows()); got != 5 {
		t.Fatalf("fig11 rows = %d, want 5 eviction policies", got)
	}
}

func TestRunFig14(t *testing.T) {
	skipHeavy(t)
	res, err := Run("fig14", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, "fig14", res)
}

func TestScaleString(t *testing.T) {
	if Quick.String() != "quick" || Full.String() != "full" {
		t.Fatal("Scale names wrong")
	}
}
