// Package conc poses as repro/node to exercise the lockguard analyzer:
// fields whose writes mostly happen under the struct's mutex are
// inferred guarded, and every lock-free access is flagged.
package conc

import "sync"

// Registry guards hits with mu; done is a channel and synchronizes
// itself.
type Registry struct {
	mu   sync.Mutex
	hits int
	done chan struct{}
}

// NewRegistry writes fields through a freshly built local: constructor
// writes are exempt from both the tallies and the findings.
func NewRegistry() *Registry {
	r := &Registry{done: make(chan struct{})}
	r.hits = 0
	return r
}

// Add and Reset are the majority: locked writes that establish the
// guard relation mu -> hits.
func (r *Registry) Add() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hits++
}

func (r *Registry) Reset() {
	r.mu.Lock()
	r.hits = 0
	r.mu.Unlock()
}

// Peek reads the guarded field without the lock: the "it's just a
// read" drift.
func (r *Registry) Peek() int {
	return r.hits // want `field Registry.hits is read without the lock that guards it`
}

// Bump writes the guarded field without the lock.
func (r *Registry) Bump() {
	r.hits++ // want `field Registry.hits is written without the lock that guards it`
}

// Flush locks and delegates to a helper that inherits the locked
// context (the xxxLocked convention): the helper's write is not
// flagged.
func (r *Registry) Flush() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flushLocked()
}

func (r *Registry) flushLocked() {
	r.hits = 0
}

// TryReset releases early in an error branch; the linear tracker must
// keep the lock held on the fallthrough path (control flow never
// reaches it through the early return).
func (r *Registry) TryReset(ok bool) bool {
	r.mu.Lock()
	if !ok {
		r.mu.Unlock()
		return false
	}
	r.hits = 0
	r.mu.Unlock()
	return true
}

// Spawn writes from a closure: a literal may run on another goroutine
// after the critical section ended, so no lock state carries in.
func (r *Registry) Spawn() {
	r.mu.Lock()
	defer r.mu.Unlock()
	go func() {
		r.hits++ // want `field Registry.hits is written without the lock that guards it`
	}()
}

// Report carries a reasoned suppression.
func (r *Registry) Report() int {
	//lint:lockguard-ok caller snapshots after all writers have joined
	return r.hits
}

// Stop closes the channel field: channels synchronize themselves and
// are never inferred guarded.
func (r *Registry) Stop() {
	close(r.done)
}

// Plain has no mutex: its fields are never candidates.
type Plain struct {
	n int
}

func (p *Plain) Inc() {
	p.n++
}
