package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Results", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("beta-long-name", 0.25)
	out := tb.String()
	if !strings.Contains(out, "Results") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.5") {
		t.Fatalf("row content missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + underline + header + separator + 2 rows
	if len(lines) != 6 {
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestFloatFormatting(t *testing.T) {
	tests := []struct {
		in   any
		want string
	}{
		{1.0, "1"},
		{1.5, "1.5"},
		{0.123456, "0.123"},
		{0.0, "0"},
		{float32(2.25), "2.25"},
		{42, "42"},
		{"text", "text"},
	}
	for _, tt := range tests {
		if got := formatCell(tt.in); got != tt.want {
			t.Errorf("formatCell(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestRowsCopies(t *testing.T) {
	tb := NewTable("t", "a")
	tb.AddRow("x")
	rows := tb.Rows()
	rows[0][0] = "mutated"
	if tb.Rows()[0][0] != "x" {
		t.Fatal("Rows returned a shared slice")
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("plain", `has "quotes", and commas`)
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\nplain,\"has \"\"quotes\"\", and commas\"\n"
	if b.String() != want {
		t.Fatalf("CSV = %q, want %q", b.String(), want)
	}
}

func TestChartEmpty(t *testing.T) {
	c := NewChart("empty", "x", "y")
	if !strings.Contains(c.String(), "no data") {
		t.Fatal("empty chart did not say so")
	}
}

func TestChartRendersSeries(t *testing.T) {
	c := NewChart("demo", "cache", "probes")
	if err := c.Add(Series{Name: "a", X: []float64{1, 2, 3}, Y: []float64{1, 4, 9}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(Series{Name: "b", X: []float64{1, 2, 3}, Y: []float64{9, 4, 1}}); err != nil {
		t.Fatal(err)
	}
	out := c.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "o a") || !strings.Contains(out, "x b") {
		t.Fatalf("chart missing elements:\n%s", out)
	}
	if !strings.Contains(out, "o") || !strings.Contains(out, "x") {
		t.Fatal("markers not plotted")
	}
}

func TestChartRejectsMismatchedSeries(t *testing.T) {
	c := NewChart("t", "x", "y")
	if err := c.Add(Series{Name: "bad", X: []float64{1}, Y: []float64{1, 2}}); err == nil {
		t.Fatal("mismatched series accepted")
	}
}

func TestChartLogX(t *testing.T) {
	c := NewChart("log", "cache", "y")
	c.LogX = true
	_ = c.Add(Series{Name: "s", X: []float64{10, 100, 1000}, Y: []float64{1, 2, 3}})
	out := c.String()
	if !strings.Contains(out, "log scale") {
		t.Fatalf("log annotation missing:\n%s", out)
	}
}
