package detrand_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/detrand"
)

// TestFindings checks that wall-clock reads, global math/rand draws,
// and crypto/rand uses are flagged inside a deterministic package, and
// that reasoned //lint:wallclock-ok suppressions (and only reasoned
// ones) silence them.
func TestFindings(t *testing.T) {
	analysistest.Run(t, "testdata/src/det", "repro/internal/policy", detrand.Analyzer)
}

// TestExemptPackage checks that the live node's import path is out of
// scope: wall time is legitimate there.
func TestExemptPackage(t *testing.T) {
	analysistest.Run(t, "testdata/src/exempt", "repro/node", detrand.Analyzer)
}

// TestCrossPackageTaint checks the laundering path: a deterministic
// package calling an exempt-package helper whose summary reaches the
// wall clock or the global RNG is flagged at the call site, pure
// helpers pass, and a reasoned suppression at the call site holds.
func TestCrossPackageTaint(t *testing.T) {
	analysistest.RunDirs(t, []analysis.DirSpec{
		{Dir: "testdata/src/helper", ImportPath: "repro/node"},
		{Dir: "testdata/src/taint", ImportPath: "repro/internal/core"},
	}, detrand.Analyzer)
}
