// Package det poses as a deterministic simulation package
// (repro/internal/policy) to exercise the detrand analyzer.
package det

import (
	crand "crypto/rand"
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()          // want `time.Now reads the wall clock`
	time.Sleep(time.Millisecond) // want `time.Sleep reads the wall clock`
	return time.Since(start)     // want `time.Since reads the wall clock`
}

func durationsAreFine() time.Duration {
	// Types and constants from package time carry no wall-clock state.
	var d time.Duration = 3 * time.Second
	return d.Round(time.Millisecond)
}

func globalRand() int {
	rand.Shuffle(3, func(i, j int) {}) // want `global math/rand.Shuffle draws from hidden auto-seeded state`
	_ = randv2.IntN(7)                 // want `global math/rand/v2.IntN draws from hidden auto-seeded state`
	return rand.Intn(10)               // want `global math/rand.Intn draws from hidden auto-seeded state`
}

func seededLocalRandIsFine() float64 {
	r := rand.New(rand.NewSource(1)) // explicitly seeded: deterministic
	return r.Float64()
}

func cryptoRand() {
	buf := make([]byte, 8)
	_, _ = crand.Read(buf) // want `crypto/rand is nondeterministic by design`
}

func suppressed() time.Time {
	//lint:wallclock-ok fixture demonstrating a reasoned suppression
	return time.Now()
}

func suppressedSameLine() int {
	return rand.Int() //lint:wallclock-ok fixture: same-line suppression
}

func suppressionWithoutReason() time.Time {
	//lint:wallclock-ok
	return time.Now() // want `needs a reason` `time.Now reads the wall clock`
}
