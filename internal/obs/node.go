package obs

// NodeMetrics binds the live node's metric names (guess_node_*) and
// backs the node's Stats counters, so one instrument set serves both
// the Stats snapshot API and the /metrics endpoint. A node always owns
// a NodeMetrics; with no registry attached the instruments live in a
// private registry that is never exposed.
//
// See README.md, "Observability", for the metric name table.
type NodeMetrics struct {
	PingsSent     *Counter
	PongsReceived *Counter
	PingsReceived *Counter
	QueriesServed *Counter
	ProbesRefused *Counter
	DeadEvictions *Counter

	// Degradation counters: transport faults and retry behavior.
	MalformedDropped *Counter
	Retries          *Counter
	BusyBackoffs     *Counter
	LateReplies      *Counter
	DupReplies       *Counter

	// Admission-control counters: load shed by tier (pings are shed
	// before queries; cache writes are skipped under pressure; drain
	// sheds everything).
	ShedPings       *Counter
	ShedQueries     *Counter
	ShedDrain       *Counter
	CacheWriteSkips *Counter

	// Circuit-breaker state on the client path.
	BreakerOpens *Counter
	BreakerOpen  *Gauge

	// Snapshot (crash-recovery) accounting.
	SnapshotWrites    *Counter
	SnapshotErrors    *Counter
	SnapshotRejected  *Counter
	SnapshotRestored  *Counter
	SnapshotVerified  *Counter
	SnapshotDiscarded *Counter
	SnapshotLastUnix  *Gauge

	// Draining is 1 from the moment Close begins until the process
	// exits (health probes read it as "do not route to me").
	Draining *Gauge

	// RTT is the real-clock probe round-trip distribution feeding the
	// adaptive-timeout estimator.
	RTT *Histogram

	// CacheEntries tracks link-cache occupancy.
	CacheEntries *Gauge
}

// RTTBuckets spans sub-millisecond loopback replies to multi-second
// stragglers (real-clock seconds).
var RTTBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}

// NewNodeMetrics registers the live-node metric set in reg. A nil
// registry is replaced with a private one, so the returned instruments
// are always usable.
func NewNodeMetrics(reg *Registry) *NodeMetrics {
	if reg == nil {
		reg = NewRegistry()
	}
	return &NodeMetrics{
		PingsSent:     reg.Counter("guess_node_pings_sent_total", "Maintenance pings sent."),
		PongsReceived: reg.Counter("guess_node_pongs_received_total", "Pongs received and accepted."),
		PingsReceived: reg.Counter("guess_node_pings_received_total", "Pings served for other peers."),
		QueriesServed: reg.Counter("guess_node_queries_served_total", "Query probes served for other peers."),
		ProbesRefused: reg.Counter("guess_node_probes_refused_total", "Probes refused with Busy (capacity limit)."),
		DeadEvictions: reg.Counter("guess_node_dead_evictions_total", "Cache entries evicted after probe timeouts."),

		MalformedDropped: reg.Counter("guess_node_malformed_dropped_total", "Datagrams dropped as malformed."),
		Retries:          reg.Counter("guess_node_retries_total", "Probe retransmissions (attempts beyond the first)."),
		BusyBackoffs:     reg.Counter("guess_node_busy_backoffs_total", "Busy replies absorbed by demotion instead of eviction."),
		LateReplies:      reg.Counter("guess_node_late_replies_total", "Replies that arrived after their probe completed."),
		DupReplies:       reg.Counter("guess_node_dup_replies_total", "Redundant copies of already-consumed replies."),

		ShedPings:       reg.Counter("guess_node_shed_pings_total", "Pings refused under admission pressure (tier 1)."),
		ShedQueries:     reg.Counter("guess_node_shed_queries_total", "Queries refused by fair admission (tier 2)."),
		ShedDrain:       reg.Counter("guess_node_shed_drain_total", "Probes refused while draining for shutdown."),
		CacheWriteSkips: reg.Counter("guess_node_cache_write_skips_total", "Cache writes skipped under admission pressure."),

		BreakerOpens: reg.Counter("guess_node_breaker_opens_total", "Circuit breakers tripped open by consecutive timeouts."),
		BreakerOpen:  reg.Gauge("guess_node_breaker_open", "Peers currently behind an open circuit breaker."),

		SnapshotWrites:    reg.Counter("guess_node_snapshot_writes_total", "Link-cache snapshots written."),
		SnapshotErrors:    reg.Counter("guess_node_snapshot_errors_total", "Snapshot write failures."),
		SnapshotRejected:  reg.Counter("guess_node_snapshot_rejected_total", "Startup snapshots rejected as corrupt."),
		SnapshotRestored:  reg.Counter("guess_node_snapshot_restored_total", "Entries restored from a startup snapshot (suspect until verified)."),
		SnapshotVerified:  reg.Counter("guess_node_snapshot_verified_total", "Restored entries verified live by ping and installed."),
		SnapshotDiscarded: reg.Counter("guess_node_snapshot_discarded_total", "Restored entries discarded after failing verification."),
		SnapshotLastUnix:  reg.Gauge("guess_node_snapshot_last_unixtime", "Unix time of the last successful snapshot write."),

		Draining: reg.Gauge("guess_node_draining", "1 while the node is draining for shutdown."),

		RTT: reg.Histogram("guess_node_rtt_seconds", "Real-clock probe round-trip time.", RTTBuckets),

		CacheEntries: reg.Gauge("guess_node_cache_entries", "Current link-cache occupancy."),
	}
}
