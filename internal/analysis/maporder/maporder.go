// Package maporder implements the guess-lint analyzer that stops Go's
// randomized map-iteration order from reaching observable state in the
// deterministic simulation packages.
//
// Map order leaking into Results, CSV traces, or Prometheus exposition
// breaks byte-stable goldens — usually rarely enough to pass review and
// flake weeks later. Inside the deterministic packages (see
// analysis.IsDeterministic) every `for ... range m` over a map must be
// one of:
//
//   - provably order-insensitive: the body only accumulates with
//     commutative updates (x++, x--, x += ..., |=, &=, ^=), deletes
//     from a map, or keeps a max/min via `if v > best { best = v }`
//     (including guarded accumulators and constant flag sets);
//   - the sorted-keys idiom: the body only appends the key (or value)
//     to a slice that is sorted by the statement immediately after the
//     loop, after which iterating the slice is deterministic;
//   - annotated //lint:maporder-ok <reason> when order-insensitivity
//     holds for reasons the analyzer cannot prove (for example a
//     lookup that can match at most one entry).
//
// The check is interprocedural: ranging over maps.Keys(m), over
// slices.Collect(maps.Keys(m)), or over a call to a helper that returns
// an unsorted map-derived slice (see FuncFacts.MapOrderedReturn) is
// ranging over a map, so extracting the key collection into a helper
// does not launder the order away. Labels in front of the range
// statement are looked through.
package maporder

import (
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Suppress is the //lint: directive that silences this analyzer.
const Suppress = "maporder-ok"

// Analyzer is the maporder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration whose order can reach observable state in deterministic packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsDeterministic(pass.Path) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var list []ast.Stmt
			switch n := n.(type) {
			case *ast.BlockStmt:
				list = n.List
			case *ast.CaseClause:
				list = n.Body
			case *ast.CommClause:
				list = n.Body
			default:
				return true
			}
			for i, stmt := range list {
				// A label in front of a range does not change its order.
				if lab, ok := stmt.(*ast.LabeledStmt); ok {
					stmt = lab.Stmt
				}
				rng, ok := stmt.(*ast.RangeStmt)
				if !ok {
					continue
				}
				source, ordered := mapOrderedSource(pass, rng.X)
				if !ordered {
					continue
				}
				if orderInsensitive(pass, rng.Body.List) {
					continue
				}
				if isSortedKeysIdiom(pass, rng, list[i+1:]) {
					continue
				}
				if pass.Suppressed(rng.Pos(), Suppress) {
					continue
				}
				via := ""
				if source != "map" {
					via = " (order laundered through " + source + ")"
				}
				pass.Reportf(rng.Pos(),
					"map iteration order%s can reach observable state and break byte-stable output; iterate sorted keys (append + sort immediately after), restrict the body to commutative accumulators, or annotate //lint:%s <reason>",
					via, Suppress)
			}
			return true
		})
	}
	return nil
}

// mapOrderedSource reports whether ranging over e visits elements in
// map-iteration order — directly (e is a map), via stdlib iterators
// (maps.Keys and friends, slices.Collect of them), or via a call to a
// function the interprocedural summaries mark as returning map-derived
// order (the helper-launders-the-keys evasion).
func mapOrderedSource(pass *analysis.Pass, e ast.Expr) (string, bool) {
	return pass.Prog.MapOrderedSource(pass.TypesInfo, e)
}

// orderInsensitive reports whether every statement in body commutes
// across iterations, so the loop's effect is independent of visit
// order.
func orderInsensitive(pass *analysis.Pass, body []ast.Stmt) bool {
	for _, s := range body {
		if !insensitiveStmt(pass, s) {
			return false
		}
	}
	return true
}

func insensitiveStmt(pass *analysis.Pass, s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.IncDecStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE
	case *ast.EmptyStmt:
		return true
	case *ast.AssignStmt:
		return insensitiveAssign(pass, s, nil)
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		return ok && isBuiltin(pass, call, "delete")
	case *ast.IfStmt:
		// Guarded accumulation: no else branch, no init statement, and
		// a side-effect-free condition. The body may hold accumulator
		// statements, plus plain assignments in the max/min shape
		// (target appears in the comparison) or of constants (flags).
		if s.Else != nil || s.Init != nil || containsCall(pass, s.Cond) {
			return false
		}
		cond, isCompare := s.Cond.(*ast.BinaryExpr)
		if isCompare {
			switch cond.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ:
			default:
				isCompare = false
			}
		}
		for _, inner := range s.Body.List {
			if a, ok := inner.(*ast.AssignStmt); ok && isCompare && insensitiveAssign(pass, a, cond) {
				continue
			}
			if !insensitiveStmt(pass, inner) {
				return false
			}
		}
		return true
	}
	return false
}

// insensitiveAssign reports whether the assignment commutes across
// iterations: a compound accumulator (+=, -=, *=, |=, &=, ^=) with a
// call-free right-hand side, a plain assignment of a constant, or —
// when cond is the enclosing comparison — a plain assignment whose
// target is one of the comparison's operands (the max/min idiom).
func insensitiveAssign(pass *analysis.Pass, a *ast.AssignStmt, cond *ast.BinaryExpr) bool {
	for _, rhs := range a.Rhs {
		if containsCall(pass, rhs) {
			return false
		}
	}
	switch a.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
		return true
	case token.ASSIGN:
		if len(a.Lhs) != 1 || len(a.Rhs) != 1 {
			return false
		}
		if tv, ok := pass.TypesInfo.Types[a.Rhs[0]]; ok && tv.Value != nil {
			return true // setting a constant: same result whichever iteration wins
		}
		if cond != nil {
			lhs := exprString(pass.Fset, a.Lhs[0])
			return exprString(pass.Fset, cond.X) == lhs || exprString(pass.Fset, cond.Y) == lhs
		}
	}
	return false
}

// isSortedKeysIdiom recognizes
//
//	for k := range m { s = append(s, k) }
//	sort.Xxx(s)            // or slices.Sort(s)
//
// where the loop body is exactly one append of the iteration variable
// and the statement immediately after the loop sorts the slice.
func isSortedKeysIdiom(pass *analysis.Pass, rng *ast.RangeStmt, rest []ast.Stmt) bool {
	if len(rng.Body.List) != 1 {
		return false
	}
	assign, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || assign.Tok != token.ASSIGN || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || !isBuiltin(pass, call, "append") || len(call.Args) != 2 {
		return false
	}
	target := exprString(pass.Fset, assign.Lhs[0])
	if exprString(pass.Fset, call.Args[0]) != target {
		return false
	}
	appended := exprString(pass.Fset, call.Args[1])
	iterVar := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name != "_" && id.Name == appended
	}
	if !(rng.Key != nil && iterVar(rng.Key)) && !(rng.Value != nil && iterVar(rng.Value)) {
		return false
	}
	if len(rest) == 0 {
		return false
	}
	next, ok := rest[0].(*ast.ExprStmt)
	if !ok {
		return false
	}
	sortCall, ok := next.X.(*ast.CallExpr)
	if !ok || len(sortCall.Args) == 0 {
		return false
	}
	sel, ok := sortCall.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.TypesInfo.Uses[pkg].(*types.PkgName)
	if !ok {
		return false
	}
	switch pkgName.Imported().Path() {
	case "sort", "slices":
	default:
		return false
	}
	return exprString(pass.Fset, sortCall.Args[0]) == target ||
		strings.Contains(exprString(pass.Fset, sortCall.Args[0]), target)
}

func isBuiltin(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

func containsCall(pass *analysis.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			// len/cap are pure; any other call may observe or mutate
			// order-dependent state.
			if !isBuiltin(pass, call, "len") && !isBuiltin(pass, call, "cap") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// exprString renders an expression for syntactic comparison.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var b strings.Builder
	if err := printer.Fprint(&b, fset, e); err != nil {
		return ""
	}
	return b.String()
}
