// Package analysis is the scaffolding for guess-lint, the repo's
// custom static-analysis suite. It is a minimal, dependency-free
// reimplementation of the golang.org/x/tools/go/analysis vocabulary
// (Analyzer, Pass, diagnostics) so the analyzers under
// internal/analysis/... can be written in the standard shape without
// pulling a module dependency into an otherwise stdlib-only repo; if
// x/tools ever becomes available the analyzers port mechanically.
//
// The suite machine-enforces the conventions that keep seeded
// simulation runs bit-deterministic (see DESIGN.md, "Determinism
// rules"): no wall clock or global math/rand in simulation packages
// (detrand), no map-iteration order reaching observable output
// (maporder), simrng named-stream discipline (rngstream), and literal,
// documented, once-registered obs metric names (obsname).
//
// Findings are suppressed with an explicit, reasoned annotation:
//
//	//lint:<directive> <reason>
//
// on the offending line or the line directly above it. The reason is
// mandatory — a bare directive does not suppress and is itself
// reported — so every exception to a determinism rule records why it
// is safe.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check. Run is invoked once per
// loaded package and reports findings through the Pass.
type Analyzer struct {
	Name string // short lowercase identifier, e.g. "detrand"
	Doc  string // one-paragraph description of what it enforces
	Run  func(*Pass) error
}

// A Finding is one diagnostic produced by an analyzer, resolved to a
// file position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// A Pass carries one type-checked package to an analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Path      string // canonical import path (test-variant suffix stripped)
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Prog is the interprocedural view over every package in the run
	// (call graph and per-function summaries; see callgraph.go). Under
	// `go vet -vettool` it spans only the single package being vetted.
	Prog *Program

	report      func(Finding)
	suppression map[string][]*directive // file name -> directives in the file
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// directive is one parsed //lint: comment.
type directive struct {
	name     string // e.g. "maporder-ok"
	reason   string // text after the directive; must be non-empty
	pos      token.Position
	line     int
	reported bool // reason-missing complaint already emitted
	used     bool // suppressed at least one finding (or stopped taint)
}

// Suppressed reports whether a finding at pos is suppressed by a
// //lint:<name> <reason> comment on the same line or the line directly
// above. A directive with no reason never suppresses; instead the
// missing reason is reported (once) so suppressions cannot silently
// rot into unexplained exceptions.
func (p *Pass) Suppressed(pos token.Pos, name string) bool {
	position := p.Fset.Position(pos)
	for _, d := range p.suppression[position.Filename] {
		if d.name != name || (d.line != position.Line && d.line != position.Line-1) {
			continue
		}
		if d.reason == "" {
			if !d.reported {
				d.reported = true
				p.report(Finding{
					Analyzer: p.Analyzer.Name,
					Pos:      position,
					Message:  fmt.Sprintf("suppression //lint:%s needs a reason explaining why the exception is safe", name),
				})
			}
			continue
		}
		d.used = true
		return true
	}
	return false
}

// parseDirectives extracts //lint: comments from a file, keyed for
// same-line / line-above lookup.
func parseDirectives(fset *token.FileSet, f *ast.File) []*directive {
	var out []*directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//lint:")
			if !ok {
				continue
			}
			name, reason, _ := strings.Cut(text, " ")
			pos := fset.Position(c.Pos())
			out = append(out, &directive{
				name:   name,
				reason: strings.TrimSpace(reason),
				pos:    pos,
				line:   pos.Line,
			})
		}
	}
	return out
}

// deterministicPkgs are the packages whose behavior must be a pure
// function of Params.Seed: the simulation engine and every substrate
// it draws on, plus the observability layer whose exposition must stay
// byte-stable. Wall-clock time, global RNGs, and map-iteration order
// reaching output are forbidden here. node/, cmd/, and examples/ are
// exempt: a live peer legitimately reads the wall clock.
// internal/simrng is also exempt — it is the RNG these rules point
// everyone else at.
var deterministicPkgs = map[string]bool{
	"repro/internal/core":     true,
	"repro/internal/policy":   true,
	"repro/internal/cache":    true,
	"repro/internal/eventq":   true,
	"repro/internal/dist":     true,
	"repro/internal/lifetime": true,
	"repro/internal/content":  true,
	"repro/internal/workload": true,
	"repro/internal/overlay":  true,
	"repro/internal/gnutella": true,
	"repro/internal/gossip":   true,
	"repro/internal/dht":      true,
	"repro/internal/obs":      true,
	// orchestrate must keep distributed results byte-identical to
	// local ones; its only wall-clock use (the worker liveness
	// watchdog) carries a reasoned suppression.
	"repro/internal/orchestrate": true,
	// internal/frame is pure byte layout (length + CRC framing shared
	// by orchestrate and node/cluster): no clock, no RNG, no maps —
	// binding it costs nothing and keeps the wire format seed-stable.
	"repro/internal/frame": true,

	// node/cluster is deliberately NOT in this set, like the rest of
	// node/: the harness backs off on real time, the sync client
	// jitters its push interval off the wall clock, and salt epochs
	// are minted from time.Now — all load-bearing uses of
	// nondeterminism in a live robustness layer. Its tests pin
	// determinism where it matters (snapshot bytes, dedupe, epoch
	// ordering) with injected clocks instead.
}

// IsDeterministic reports whether the import path names a package
// bound by the determinism rules. External test packages ("foo_test")
// inherit their subject package's obligations, because golden-file
// tests are exactly where order instability becomes a flaky diff.
func IsDeterministic(path string) bool {
	return deterministicPkgs[strings.TrimSuffix(path, "_test")]
}

// concurrentPkgs are the packages bound by the concurrency-discipline
// rules (atomicfield, lockguard, goroexit, wirebound): the live node
// and everything it shares goroutines, mutexes, and wire decoders with.
// The simulation stack is single-goroutine by construction (the sharded
// engine's workers are proven by TestShardCountInvariance under -race)
// and stays out; cmd/ mains are thin wiring over these layers.
var concurrentPkgs = map[string]bool{
	"repro/node":                 true,
	"repro/node/cluster":         true,
	"repro/node/memnet":          true,
	"repro/internal/orchestrate": true,
	"repro/internal/obs":         true,
	"repro/internal/frame":       true,
	// internal/wire is single-goroutine but is the node's datagram
	// decoder: wirebound's length-bounding rule applies there.
	"repro/internal/wire": true,
}

// IsConcurrent reports whether the import path names a package bound
// by the concurrency-discipline rules. Test variants inherit the
// subject package's obligations, though the concurrency analyzers skip
// _test.go files themselves (tests are single-goroutine unless they
// spawn, and the race detector covers them in `make race`).
func IsConcurrent(path string) bool {
	return concurrentPkgs[strings.TrimSuffix(path, "_test")]
}

// IsTestFile reports whether f was parsed from a _test.go file. The
// concurrency analyzers skip test files: tests are single-goroutine
// unless they spawn, and `make race` covers the ones that do.
func IsTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// SuppressionCheck is the analyzer name under which the framework
// reports stale suppressions: a //lint: directive that suppressed
// nothing in the whole run has rotted (the finding it silenced is gone,
// or the directive never matched one) and is itself a finding, so the
// suppression inventory cannot accumulate dead entries.
const SuppressionCheck = "suppression"

// Run applies each analyzer to each package and returns the combined
// findings sorted by position then analyzer, so output is stable for
// golden comparisons and CI logs. Before the analyzers run, the whole
// package set is folded into one Program (call graph + per-function
// summaries) shared by every Pass. After all analyzers have run,
// directives that suppressed nothing are reported (see
// SuppressionCheck). reportUnused exists because vet mode analyzes one
// package at a time and would misreport suppressions whose findings
// need cross-package summaries; the standalone runner passes true.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	return run(pkgs, analyzers, true)
}

// RunWithoutSuppressionCheck is Run minus the stale-suppression sweep,
// for `go vet -vettool` mode: a single-package view cannot tell a stale
// suppression from one whose finding requires cross-package summaries.
func RunWithoutSuppressionCheck(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	return run(pkgs, analyzers, false)
}

func run(pkgs []*Package, analyzers []*Analyzer, reportUnused bool) ([]Finding, error) {
	var findings []Finding
	suppression := make(map[string][]*directive)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			suppression[name] = parseDirectives(pkg.Fset, f)
		}
	}
	prog := buildProgram(pkgs, suppression)
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:    a,
				Path:        pkg.Path,
				Fset:        pkg.Fset,
				Files:       pkg.Files,
				Pkg:         pkg.Types,
				TypesInfo:   pkg.TypesInfo,
				Prog:        prog,
				suppression: suppression,
				report:      func(f Finding) { findings = append(findings, f) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	if reportUnused {
		for _, dirs := range suppression {
			for _, d := range dirs {
				if d.used || d.reported {
					continue
				}
				findings = append(findings, Finding{
					Analyzer: SuppressionCheck,
					Pos:      d.pos,
					Message: fmt.Sprintf(
						"unused suppression //lint:%s: no finding here to suppress; delete the stale annotation",
						d.name),
				})
			}
		}
	}
	sortFindings(findings)
	return findings, nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
