package obs

// NodeMetrics binds the live node's metric names (guess_node_*) and
// backs the node's Stats counters, so one instrument set serves both
// the Stats snapshot API and the /metrics endpoint. A node always owns
// a NodeMetrics; with no registry attached the instruments live in a
// private registry that is never exposed.
//
// See README.md, "Observability", for the metric name table.
type NodeMetrics struct {
	PingsSent     *Counter
	PongsReceived *Counter
	PingsReceived *Counter
	QueriesServed *Counter
	ProbesRefused *Counter
	DeadEvictions *Counter

	// Degradation counters: transport faults and retry behavior.
	MalformedDropped *Counter
	Retries          *Counter
	BusyBackoffs     *Counter
	LateReplies      *Counter
	DupReplies       *Counter

	// RTT is the real-clock probe round-trip distribution feeding the
	// adaptive-timeout estimator.
	RTT *Histogram

	// CacheEntries tracks link-cache occupancy.
	CacheEntries *Gauge
}

// RTTBuckets spans sub-millisecond loopback replies to multi-second
// stragglers (real-clock seconds).
var RTTBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}

// NewNodeMetrics registers the live-node metric set in reg. A nil
// registry is replaced with a private one, so the returned instruments
// are always usable.
func NewNodeMetrics(reg *Registry) *NodeMetrics {
	if reg == nil {
		reg = NewRegistry()
	}
	return &NodeMetrics{
		PingsSent:     reg.Counter("guess_node_pings_sent_total", "Maintenance pings sent."),
		PongsReceived: reg.Counter("guess_node_pongs_received_total", "Pongs received and accepted."),
		PingsReceived: reg.Counter("guess_node_pings_received_total", "Pings served for other peers."),
		QueriesServed: reg.Counter("guess_node_queries_served_total", "Query probes served for other peers."),
		ProbesRefused: reg.Counter("guess_node_probes_refused_total", "Probes refused with Busy (capacity limit)."),
		DeadEvictions: reg.Counter("guess_node_dead_evictions_total", "Cache entries evicted after probe timeouts."),

		MalformedDropped: reg.Counter("guess_node_malformed_dropped_total", "Datagrams dropped as malformed."),
		Retries:          reg.Counter("guess_node_retries_total", "Probe retransmissions (attempts beyond the first)."),
		BusyBackoffs:     reg.Counter("guess_node_busy_backoffs_total", "Busy replies absorbed by demotion instead of eviction."),
		LateReplies:      reg.Counter("guess_node_late_replies_total", "Replies that arrived after their probe completed."),
		DupReplies:       reg.Counter("guess_node_dup_replies_total", "Redundant copies of already-consumed replies."),

		RTT: reg.Histogram("guess_node_rtt_seconds", "Real-clock probe round-trip time.", RTTBuckets),

		CacheEntries: reg.Gauge("guess_node_cache_entries", "Current link-cache occupancy."),
	}
}
