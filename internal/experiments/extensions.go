package experiments

import (
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/report"
	"repro/internal/stats"
)

func init() {
	register("ext-adaptive", "Extension: adaptive parallel probes (paper §6.2 future work)",
		extAdaptiveSpecs, extAdaptiveRender)
	register("ext-selfish", "Extension: selfish peers and probe payments (paper §3.3)",
		extSelfishSpecs, extSelfishRender)
	register("ext-detection", "Extension: pong-poisoning detection (paper §6.4 future work)",
		extDetectionSpecs, extDetectionRender)
	register("abl-pongsize", "Ablation: pong size vs query cost and cache health",
		ablPongSizeSpecs, ablPongSizeRender)
	register("abl-introprob", "Ablation: introduction probability vs performance",
		ablIntroProbSpecs, ablIntroProbRender)
}

// adaptiveModes are the ext-adaptive probe dispatch variants.
var adaptiveModes = []struct {
	name   string
	mutate func(*core.Params)
}{
	{"serial (spec)", func(*core.Params) {}},
	{"parallel k=5", func(p *core.Params) { p.ParallelProbes = 5 }},
	{"parallel k=10", func(p *core.Params) { p.ParallelProbes = 10 }},
	{"adaptive (2x on stall)", func(p *core.Params) {
		p.AdaptiveParallel = true
		p.AdaptiveParallelWindow = 5
		p.MaxParallelProbes = 64
	}},
}

func extAdaptiveSpecs(opts Options) []Spec {
	params := make([]core.Params, len(adaptiveModes))
	for i, m := range adaptiveModes {
		p := opts.baseParams()
		m.mutate(&p)
		params[i] = p
	}
	return []Spec{{Family: FamilyGUESS, Core: params}}
}

func extAdaptiveRender(_ Options, batches [][]PointResult) (*Result, error) {
	results := coreResultsOf(batches[0])
	t := report.NewTable("Adaptive parallel probes: cost vs response time",
		"Mode", "ProbesPerQuery", "AvgResponseTime", "Unsatisfaction")
	for i, m := range adaptiveModes {
		r := results[i]
		t.AddRow(m.name, r.ProbesPerQuery(), r.AvgResponseTime(), r.UnsatisfactionWithAborted())
	}
	return &Result{Tables: []*report.Table{t}}, nil
}

var selfishFractions = []float64{0, 10, 30}

func extSelfishSpecs(opts Options) []Spec {
	var params []core.Params
	for _, payments := range []bool{false, true} {
		for _, f := range selfishFractions {
			p := opts.baseParams()
			p.PercentSelfishPeers = f
			p.SelfishParallelProbes = 500
			p.ProbePayments = payments
			p.MaxProbesPerSecond = 20
			params = append(params, p)
		}
	}
	return []Spec{{Family: FamilyGUESS, Core: params}}
}

func extSelfishRender(_ Options, batches [][]PointResult) (*Result, error) {
	results := coreResultsOf(batches[0])
	t := report.NewTable("Selfish peers: network load with and without probe payments",
		"ProbePayments", "PercentSelfish", "TotalProbesReceived", "RefusedPerQuery", "Top1%LoadShare")
	idx := 0
	for _, payments := range []bool{false, true} {
		for _, f := range selfishFractions {
			r := results[idx]
			loads := make([]float64, len(r.PeerLoads))
			for i, l := range r.PeerLoads {
				loads[i] = float64(l)
			}
			t.AddRow(payments, f, r.TotalLoad(), r.RefusedProbesPerQuery(), stats.TopShare(loads, 0.01))
			idx++
		}
	}
	return &Result{Tables: []*report.Table{t}}, nil
}

func extDetectionSpecs(opts Options) []Spec {
	fractions := poisonFractions(opts.Scale)
	var params []core.Params
	for _, detect := range []bool{false, true} {
		for _, f := range fractions {
			// MFS is the policy that poisoning actually defeats, so it
			// is where detection earns its keep.
			p := opts.baseParams()
			p.QueryProbe = policy.SelMFS
			p.QueryPong = policy.SelMFS
			p.CacheReplacement = policy.EvLFS
			p.PercentBadPeers = f
			p.BadPong = core.BadPongDead
			p.PoisonDetection = detect
			params = append(params, p)
		}
	}
	return []Spec{{Family: FamilyGUESS, Core: params}}
}

func extDetectionRender(opts Options, batches [][]PointResult) (*Result, error) {
	fractions := poisonFractions(opts.Scale)
	results := coreResultsOf(batches[0])
	t := report.NewTable("Poison detection: MFS under dead-address poisoning",
		"Detection", "PercentBadPeers", "ProbesPerQuery", "DeadPerQuery", "Unsatisfaction", "Blacklisted")
	idx := 0
	for _, detect := range []bool{false, true} {
		for _, f := range fractions {
			r := results[idx]
			t.AddRow(detect, f, r.ProbesPerQuery(), r.DeadProbesPerQuery(),
				r.UnsatisfactionWithAborted(), r.BlacklistEvents)
			idx++
		}
	}
	return &Result{Tables: []*report.Table{t}}, nil
}

var pongSizes = []int{1, 2, 5, 10, 20}

func ablPongSizeSpecs(opts Options) []Spec {
	params := make([]core.Params, len(pongSizes))
	for i, s := range pongSizes {
		p := opts.baseParams()
		p.PongSize = s
		params[i] = p
	}
	return []Spec{{Family: FamilyGUESS, Core: params}}
}

func ablPongSizeRender(_ Options, batches [][]PointResult) (*Result, error) {
	results := coreResultsOf(batches[0])
	t := report.NewTable("Ablation: pong size",
		"PongSize", "ProbesPerQuery", "Unsatisfaction", "AvgLiveEntries")
	for i, s := range pongSizes {
		r := results[i]
		t.AddRow(s, r.ProbesPerQuery(), r.UnsatisfactionWithAborted(), r.AvgLiveEntries)
	}
	return &Result{Tables: []*report.Table{t}}, nil
}

var introProbs = []float64{0, 0.05, 0.1, 0.3, 1}

func ablIntroProbSpecs(opts Options) []Spec {
	params := make([]core.Params, len(introProbs))
	for i, pr := range introProbs {
		p := opts.baseParams()
		p.IntroProb = pr
		params[i] = p
	}
	return []Spec{{Family: FamilyGUESS, Core: params}}
}

func ablIntroProbRender(_ Options, batches [][]PointResult) (*Result, error) {
	results := coreResultsOf(batches[0])
	t := report.NewTable("Ablation: introduction probability",
		"IntroProb", "ProbesPerQuery", "Unsatisfaction", "AvgLiveEntries")
	for i, pr := range introProbs {
		r := results[i]
		t.AddRow(pr, r.ProbesPerQuery(), r.UnsatisfactionWithAborted(), r.AvgLiveEntries)
	}
	return &Result{Tables: []*report.Table{t}}, nil
}
