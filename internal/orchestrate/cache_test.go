package orchestrate

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func cacheEntry() (string, experiments.PointResult) {
	fp := experiments.DefaultFloodParams()
	pt := experiments.Point{Family: experiments.FamilyFlood, Flood: &fp}
	return pt.Key(), experiments.PointResult{
		Family: experiments.FamilyFlood,
		Flood:  &experiments.FloodResults{Queries: 10, Satisfied: 9, Unsatisfied: 1, Messages: 42},
	}
}

func TestMemoryCache(t *testing.T) {
	c := NewMemoryCache()
	key, pr := cacheEntry()
	if _, ok := c.Get(key); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(key, pr)
	got, ok := c.Get(key)
	if !ok || got.Flood.Messages != 42 {
		t.Fatalf("get after put: ok=%v, got %+v", ok, got)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestDiskCachePersists(t *testing.T) {
	dir := t.TempDir()
	c, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	key, pr := cacheEntry()
	if _, ok := c.Get(key); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(key, pr)

	// A fresh handle on the same directory — a later run — sees it.
	c2, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(key)
	if !ok || got.Flood.Messages != 42 {
		t.Fatalf("get across reopen: ok=%v, got %+v", ok, got)
	}

	// Writes are tmp+rename: no temp litter remains.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}

// TestDiskCacheCorruptEntryIsMiss checks a damaged or truncated cache
// file degrades to recomputation, never to a bad result.
func TestDiskCacheCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	key, pr := cacheEntry()
	c.Put(key, pr)
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("expected one cache file, got %d (err %v)", len(entries), err)
	}
	p := filepath.Join(dir, entries[0].Name())

	//lint:maporder-ok independent corruption cases; order affects nothing but failure order
	for name, body := range map[string]string{
		"not json":      "{{{{",
		"wrong shape":   `{"family":"flood"}`,
		"wrong family":  `{"family":"guess","flood":{"Queries":1}}`,
		"empty":         "",
		"valid but two": `{"family":"flood","flood":{"Queries":1},"core":{}}`,
	} {
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := c.Get(key); ok {
			t.Fatalf("%s: corrupt entry served as a hit", name)
		}
	}
}

// TestDiskCacheRejectsHostileKeys checks malformed keys can never
// become path escapes or files at all.
func TestDiskCacheRejectsHostileKeys(t *testing.T) {
	dir := t.TempDir()
	c, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, pr := cacheEntry()
	for _, key := range []string{
		"", "nokey", "guess:", ":abc", "guess:../../etc/passwd",
		"guess:ABC", "a/b:c0ffee", "guess:12 34",
	} {
		c.Put(key, pr)
		if _, ok := c.Get(key); ok {
			t.Fatalf("hostile key %q round-tripped", key)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("hostile keys created %d files", len(entries))
	}
}
