// Observability: watch a simulation from the outside while it runs.
//
// The example attaches all three observability hooks of the redesigned
// Run API to one seeded simulation:
//
//   - guess.WithObserver streams trace events; the example folds
//     query_done events into a live satisfaction rate, printed every
//     100 simulated seconds.
//
//   - guess.WithMetrics fills a registry whose Prometheus-text
//     exposition is printed when the run finishes.
//
//   - A context with a timeout shows cooperative cancellation: the
//     run returns partial Results with Interrupted set instead of an
//     error.
//
// Run it with:
//
//	go run ./examples/observability
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	guess "repro"
)

func main() {
	cfg := guess.DefaultConfig()
	cfg.NetworkSize = 500
	cfg.WarmupTime = 200
	cfg.MeasureTime = 1800

	// Fold the event stream into a live satisfaction rate. The observer
	// runs inline on the simulation loop, so it just tallies; no locks
	// are needed because a single Run delivers events sequentially.
	var satisfied, done int
	nextReport := 100.0
	progress := guess.ObserverFunc(func(ev guess.TraceEvent) {
		if ev.Kind == guess.EvQueryDone {
			done++
			if ev.Outcome == guess.OutcomeSatisfied {
				satisfied++
			}
		}
		if ev.Time >= nextReport {
			nextReport += 100
			if done > 0 {
				fmt.Printf("t=%5.0fs  %4d queries done, %5.1f%% satisfied\n",
					ev.Time, done, 100*float64(satisfied)/float64(done))
			}
		}
	})

	reg := guess.NewMetricsRegistry()

	// Cut the run short to demonstrate cooperative cancellation: the
	// engine notices the deadline between event batches and returns
	// whatever it measured so far.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	res, err := guess.Run(ctx, cfg,
		guess.WithObserver(progress),
		guess.WithMetrics(reg),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	if res.Interrupted {
		fmt.Println("run interrupted — partial results up to the cancellation point:")
	}
	fmt.Printf("  queries completed:   %d\n", res.Queries)
	fmt.Printf("  probes per query:    %.1f\n", res.ProbesPerQuery())
	fmt.Printf("  unsatisfied queries: %.1f%%\n", 100*res.Unsatisfaction())

	fmt.Println("\nPrometheus exposition of the same run:")
	if err := reg.WritePrometheus(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
