package cache

import "testing"

// BenchmarkAddRemoveCycle measures the link-cache mutation mix the
// engine performs per probe: membership check, add (with eviction
// pressure), touch, and remove. Steady state should not allocate.
func BenchmarkAddRemoveCycle(b *testing.B) {
	c := NewLinkCache(128)
	for i := 0; i < 128; i++ {
		c.Add(Entry{Addr: PeerID(i)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := PeerID(i % 4096)
		if !c.Has(addr) && !c.Full() {
			c.Add(Entry{Addr: addr})
		}
		c.Touch(addr, float64(i))
		if i%3 == 0 {
			c.Remove(PeerID((i * 7) % 4096))
		}
		if c.Len() < 100 {
			c.Add(Entry{Addr: PeerID(i%4096 + 5000)})
		}
	}
}

// BenchmarkAppendEntries measures snapshotting a full cache into a
// caller-owned reused buffer (the engine's pong-building pattern).
func BenchmarkAppendEntries(b *testing.B) {
	c := NewLinkCache(128)
	for i := 0; i < 128; i++ {
		c.Add(Entry{Addr: PeerID(i)})
	}
	var buf []Entry
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = c.AppendEntries(buf[:0])
		if len(buf) != 128 {
			b.Fatal("short snapshot")
		}
	}
}

// BenchmarkReplaceAt measures the eviction write path.
func BenchmarkReplaceAt(b *testing.B) {
	c := NewLinkCache(128)
	for i := 0; i < 128; i++ {
		c.Add(Entry{Addr: PeerID(i)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ReplaceAt(i%128, Entry{Addr: PeerID(10000 + i)})
	}
}
