// Package experiments maps every table and figure of the paper's
// evaluation (Table 3, Figures 3-21) to a runnable experiment that
// regenerates it. Each experiment returns report tables whose rows are
// the series the paper plots; EXPERIMENTS.md records paper-vs-measured
// outcomes.
//
// An experiment is defined in two halves: a spec builder that maps the
// options to typed, serializable sweep Specs (see spec.go), and a
// renderer that projects the sweep results into the paper's tables and
// charts. RunSpec executes a Spec — locally on a bounded worker pool,
// or through Options.Executor on a distributed coordinator — and
// Experiment.Run glues the halves together. The legacy string-keyed
// Run(id, opts) entry survives as a deprecated shim over Lookup and
// Experiment.Run.
//
// Experiments run at two scales: Quick (small networks and short
// measurement windows, for benchmarks and CI) and Full (the paper's
// parameters). Sweep points run in parallel, one engine per
// goroutine.
package experiments

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/report"
)

// Scale selects experiment fidelity.
type Scale int

const (
	// Quick runs small networks for seconds-level turnaround.
	Quick Scale = iota
	// Full runs the paper's network sizes and durations.
	Full
)

// String names the scale.
func (s Scale) String() string {
	if s == Full {
		return "full"
	}
	return "quick"
}

// Options configures an experiment run.
type Options struct {
	// Scale selects Quick or Full fidelity.
	Scale Scale
	// Seed drives all randomness. Zero means 1.
	Seed uint64
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
	// Replications pools this many independently seeded runs per sweep
	// point (0 or 1 = single run). Derived per-query metrics then
	// reflect the pooled runs, smoothing figures at a proportional
	// compute cost. Replication applies to GUESS sweeps; the other
	// families run one engine per point.
	Replications int
	// Progress, when non-nil, receives one line per completed run.
	// Writes are serialized across the worker pool (and across
	// concurrent Run calls sharing a writer).
	Progress io.Writer
	// Context, when non-nil, cancels the experiment: no further runs
	// are scheduled after cancellation, in-flight simulations stop at
	// their next event batch, and Run returns the context's error.
	Context context.Context
	// Observer, when non-nil, receives trace events from every
	// simulation in the sweep. Runs execute in parallel, so it must be
	// safe for concurrent use (TraceWriter is). Sweeps served from the
	// in-process memo cache do not re-run and emit no events.
	Observer obs.Observer
	// Metrics, when non-nil, is shared by every simulation in the
	// sweep; counters aggregate across runs. Memo-cached sweeps do not
	// re-run and leave it untouched.
	Metrics *obs.SimMetrics
	// Executor, when non-nil, executes expanded sweep points instead of
	// the built-in in-process pool — the seam internal/orchestrate's
	// coordinator and worker pool plug into. Observer and Metrics still
	// apply only where the executor chooses to attach them: the
	// in-process pool forwards both, a TCP coordinator forwards
	// neither (workers stream progress frames instead). Results are
	// byte-identical either way; only event delivery differs.
	Executor Executor
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func (o Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// durations returns (warmup, measure) simulated seconds for the scale.
// The full-scale window is sized so the complete suite stays
// laptop-affordable; individual experiments stabilize well within it
// (each point still covers tens of thousands of queries at N=1000).
func (o Options) durations() (warmup, measure float64) {
	if o.Scale == Full {
		return 300, 1000
	}
	return 200, 600
}

// baseParams returns the defaults adjusted for the option scale.
func (o Options) baseParams() core.Params {
	p := core.DefaultParams()
	p.Seed = o.seed()
	p.WarmupTime, p.MeasureTime = o.durations()
	if o.Scale == Quick {
		p.NetworkSize = 400
		// Denser queries keep per-query statistics meaningful in the
		// short quick window without changing per-query behaviour.
		p.QueryRate = 4 * core.DefaultParams().QueryRate
	}
	return p
}

// Result is one experiment's regenerated artifact.
type Result struct {
	// ID is the experiment identifier (e.g. "fig4").
	ID string
	// Title describes the paper artifact.
	Title string
	// Tables holds the regenerated rows (usually one table).
	Tables []*report.Table
	// Charts optionally holds ASCII renderings of the figure.
	Charts []*report.Chart
}

// WriteTo renders the result's tables and charts.
func (r *Result) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, t := range r.Tables {
		n, err := t.WriteTo(w)
		total += n
		if err != nil {
			return total, err
		}
		m, err := io.WriteString(w, "\n")
		total += int64(m)
		if err != nil {
			return total, err
		}
	}
	for _, c := range r.Charts {
		n, err := io.WriteString(w, c.String()+"\n")
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// specsFunc maps options to an experiment's sweep Specs.
type specsFunc func(Options) []Spec

// renderFunc projects sweep results (one batch per Spec, in spec
// order, replication-merged) into the experiment's tables and charts.
type renderFunc func(Options, [][]PointResult) (*Result, error)

// experiment is a registry entry.
type experiment struct {
	title  string
	specs  specsFunc
	render renderFunc
}

// registry maps experiment IDs to definitions. Populated by init
// functions in the per-area files.
var registry = map[string]experiment{}

// register adds an experiment at package init time.
func register(id, title string, specs specsFunc, render renderFunc) {
	if _, dup := registry[id]; dup {
		panic(fmt.Sprintf("experiments: duplicate id %q", id))
	}
	registry[id] = experiment{title: title, specs: specs, render: render}
}

// IDs returns all experiment identifiers in a stable order: the paper
// artifacts first (table3, then figures in paper order), then the
// extension and ablation studies alphabetically.
func IDs() []string {
	var paper, extra []string
	for id := range registry {
		if _, ok := paperOrder(id); ok {
			paper = append(paper, id)
		} else {
			extra = append(extra, id)
		}
	}
	sort.Slice(paper, func(i, j int) bool {
		a, _ := paperOrder(paper[i])
		b, _ := paperOrder(paper[j])
		return a < b
	})
	sort.Strings(extra)
	return append(paper, extra...)
}

// paperOrder ranks paper artifacts: table3 first, then figure number.
func paperOrder(id string) (int, bool) {
	if id == "table3" {
		return 0, true
	}
	var n int
	if _, err := fmt.Sscanf(id, "fig%d", &n); err == nil {
		return n, true
	}
	return 0, false
}

// Title returns an experiment's description.
func Title(id string) (string, error) {
	e, ok := registry[id]
	if !ok {
		return "", fmt.Errorf("experiments: unknown experiment %q", id)
	}
	return e.title, nil
}

// Experiment is the typed handle on one registered experiment: its
// canonical sweep Specs and the renderer that turns their results into
// the paper artifact.
type Experiment struct {
	ID    string
	Title string

	specs  specsFunc
	render renderFunc
}

// Lookup resolves an experiment ID.
func Lookup(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	return Experiment{ID: id, Title: e.title, specs: e.specs, render: e.render}, nil
}

// Specs returns the experiment's canonical sweep specs for the
// options: the typed, serializable decomposition a coordinator can
// fan out to workers point by point.
func (e Experiment) Specs(opts Options) []Spec {
	return e.specs(opts)
}

// Run executes the experiment: every spec through RunSpec (and so
// through Options.Executor when set), then the renderer over the
// collected results.
func (e Experiment) Run(opts Options) (*Result, error) {
	specs := e.specs(opts)
	results := make([][]PointResult, len(specs))
	for i, spec := range specs {
		rs, err := RunSpec(opts, spec)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", e.ID, err)
		}
		results[i] = rs
	}
	res, err := e.render(opts, results)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", e.ID, err)
	}
	res.ID = e.ID
	res.Title = e.Title
	return res, nil
}

// Run executes the experiment with the given options.
//
// Deprecated: Run is the legacy string-keyed entry point. It survives
// as a thin shim over the typed Spec API — Lookup(id) for the
// experiment handle, Experiment.Specs for its canonical sweep Specs,
// and Experiment.Run or RunSpec to execute — which is what new code
// (and anything that needs to serialize or distribute work) should
// use.
func Run(id string, opts Options) (*Result, error) {
	e, err := Lookup(id)
	if err != nil {
		return nil, err
	}
	return e.Run(opts)
}

// sweepMemo caches completed sweeps within a process. Several figures
// are different projections of the same sweep (Figures 3-5 share the
// cache-size sweep; Figures 16-18 and 19-21 share the poisoning
// sweeps); on a small machine re-running them would dominate the
// suite's cost. Keys include every input that affects the runs.
var sweepMemo sync.Map // string -> []PointResult

// memoKey builds a cache key from the protocol family, the options, a
// sweep label, and a digest of the parameter sets themselves. The
// family discriminator ("guess", "gossip", "dht", ...) guarantees that
// results cached for one engine can never be served to a different
// protocol whose label, scale, seed, and digest happen to coincide.
// The digest matters too: labels are chosen by experiment authors, and
// two sweeps sharing a label, scale, seed, and replication count but
// differing in params (say, after an experiment is re-tuned) must
// never silently collide.
func memoKey(family string, opts Options, label, digest string) string {
	return fmt.Sprintf("%s|%s|scale=%v|seed=%d|reps=%d|params=%s",
		family, label, opts.Scale, opts.seed(), opts.Replications, digest)
}

// paramsDigest hashes the full JSON encoding of every parameter set
// (length-prefixed, so concatenation ambiguities cannot produce equal
// digests for different sweeps). Core's Params serializes completely
// except the Trace writer, which never participates in sweeps; the
// flood, gossip and DHT parameter structs are plain data.
func paramsDigest[T any](params []T) string {
	h := sha256.New()
	fmt.Fprintf(h, "n=%d;", len(params))
	for _, p := range params {
		b, err := json.Marshal(p)
		if err != nil {
			// Params is a plain data struct; Marshal cannot fail. Guard
			// anyway so a future non-serializable field cannot poison
			// the cache with colliding keys.
			panic(fmt.Sprintf("experiments: cannot hash params: %v", err))
		}
		fmt.Fprintf(h, "%d:", len(b))
		h.Write(b)
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// RunSpec executes every point of a sweep Spec, returning one
// replication-merged PointResult per declared point, in spec order.
//
// This is the single memoized executor behind every sweep: a labeled
// spec is cached process-wide under its family-discriminated memoKey
// (an empty Label disables memoization), GUESS points expand
// Options.Replications independently seeded runs per point and merge
// them back, and execution goes to Options.Executor when set —
// otherwise GUESS sweeps run on the bounded in-process pool and the
// other families run sequentially through their family Runner.
func RunSpec(opts Options, spec Spec) ([]PointResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	memoize := spec.Label != ""
	var key string
	if memoize {
		key = memoKey(string(spec.Family), opts, spec.Label, spec.digest())
		if v, ok := sweepMemo.Load(key); ok {
			return v.([]PointResult), nil
		}
	}
	results, err := runSpec(opts, spec)
	if err != nil {
		return nil, err
	}
	if memoize {
		sweepMemo.Store(key, results)
	}
	return results, nil
}

// replicationSeed decorrelates replicated runs of one sweep point.
const replicationSeed = 0x51ed2701

// pointSeed decorrelates the expanded points of one sweep.
const pointSeed = 0x9e3779b9

// expandPoints turns a spec into the executable point list. For GUESS
// sweeps each point expands into reps independently seeded runs, and
// every expanded point gets a distinct seed derived from its index so
// sweep points are independent but reproducible. Expansion happens
// here — before the executor seam — so a distributed worker receives
// final parameters and local and remote execution agree byte for byte.
func expandPoints(opts Options, spec Spec, reps int) []Point {
	if spec.Family != FamilyGUESS {
		pts := make([]Point, spec.NumPoints())
		for i := range pts {
			pts[i] = spec.Point(i)
		}
		return pts
	}
	pts := make([]Point, 0, len(spec.Core)*reps)
	for _, p := range spec.Core {
		for r := 0; r < reps; r++ {
			rp := p
			if reps > 1 {
				rp.Seed = p.Seed + uint64(r+1)*replicationSeed
			}
			rp.Seed += uint64(len(pts)) * pointSeed
			pts = append(pts, Point{Family: FamilyGUESS, Core: &rp})
		}
	}
	return pts
}

// runSpec executes a validated spec without consulting the memo.
func runSpec(opts Options, spec Spec) ([]PointResult, error) {
	reps := opts.Replications
	if reps < 1 || spec.Family != FamilyGUESS {
		reps = 1
	}
	expanded := expandPoints(opts, spec, reps)
	var prs []PointResult
	var err error
	switch {
	case opts.Executor != nil:
		prs, err = opts.Executor.RunPoints(opts.ctx(), expanded)
	case spec.Family == FamilyGUESS:
		prs, err = runPool(opts, expanded)
	default:
		prs, err = runSequential(opts, expanded)
	}
	if err != nil {
		return nil, err
	}
	if len(prs) != len(expanded) {
		return nil, fmt.Errorf("experiments: executor returned %d results for %d points", len(prs), len(expanded))
	}
	for i, pr := range prs {
		if err := pr.Validate(); err != nil {
			return nil, fmt.Errorf("experiments: point %d: %w", i, err)
		}
		if pr.Family != spec.Family {
			return nil, fmt.Errorf("experiments: point %d: result family %q for a %q sweep", i, pr.Family, spec.Family)
		}
	}
	if reps == 1 {
		return prs, nil
	}
	merged := make([]PointResult, len(spec.Core))
	for i := range merged {
		group := coreResultsOf(prs[i*reps : (i+1)*reps])
		merged[i] = PointResult{Family: FamilyGUESS, Core: core.MergeResults(group)}
	}
	return merged, nil
}

// progressMu serializes Options.Progress writes. It is package-level,
// not per-pool call: two concurrent experiment runs pointed at the
// same writer (the CLI does this for memoized figure groups) must not
// interleave either — per-call mutexes would only protect within one
// pool. TestParallelProgressRace exercises this under -race.
var progressMu sync.Mutex

// runPool executes expanded GUESS points on a bounded pool of
// opts.parallelism() workers, preserving order. Seeds were already
// derived by expandPoints. A worker pool (rather than one goroutine
// per point gated on a semaphore) keeps goroutine count — and
// therefore stack and scheduler footprint — flat even for
// multi-thousand-point sweeps.
//
// Cancelling opts.Context stops the feeder (no new runs start),
// interrupts in-flight runs at their next event batch, and makes
// runPool return the context's error.
func runPool(opts Options, pts []Point) ([]PointResult, error) {
	ctx := opts.ctx()
	results := make([]PointResult, len(pts))
	errs := make([]error, len(pts))
	work := make(chan int)
	workers := opts.parallelism()
	if workers > len(pts) {
		workers = len(pts)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker chains engines through Renew so its arenas —
			// peer arrays, link caches, event queue, scratch — are
			// allocated once per worker, not once per sweep point.
			// Recycling is draw-order-neutral (TestRenewMatchesFresh), so
			// sweep results are identical to fresh-engine runs.
			var prev *core.Engine
			for i := range work {
				p := *pts[i].Core
				var engine *core.Engine
				var err error
				if prev != nil {
					engine, err = prev.Renew(p)
				} else {
					engine, err = core.New(p)
				}
				if err != nil {
					errs[i] = err
					prev = nil
					continue
				}
				prev = engine
				engine.SetObserver(opts.Observer)
				engine.SetMetrics(opts.Metrics)
				res, err := engine.Run(ctx)
				if err != nil {
					errs[i] = err
					continue
				}
				results[i] = PointResult{Family: FamilyGUESS, Core: res}
				if opts.Progress != nil {
					progressMu.Lock()
					fmt.Fprintf(opts.Progress, "  run %d/%d done (N=%d cache=%d)\n",
						i+1, len(pts), p.NetworkSize, p.CacheSize)
					progressMu.Unlock()
				}
			}
		}()
	}
feed:
	for i := range pts {
		select {
		case work <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// runSequential executes flood/gossip/DHT points one at a time through
// the family Runner — these sweeps are one or a handful of points, so
// pooling would buy nothing.
func runSequential(opts Options, pts []Point) ([]PointResult, error) {
	results := make([]PointResult, len(pts))
	o := Observation{Observer: opts.Observer}
	for i, pt := range pts {
		pr, err := RunPoint(opts.ctx(), pt, o)
		if err != nil {
			return nil, err
		}
		results[i] = pr
	}
	return results, nil
}

// cacheSizesFor returns the cache-size sweep for a given network size,
// log-spaced as in Figures 3-4. For the largest networks the sweep is
// capped: exhaustive queries hold per-candidate state for their whole
// (up to ~1000 s) lifetime, and N=5000 with multi-thousand-entry
// caches needs tens of gigabytes — beyond a laptop-scale run. The
// capped range still shows the figures' growth and the satisfaction
// minimum.
func cacheSizesFor(networkSize int, scale Scale) []int {
	all := []int{5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000}
	if scale == Quick {
		all = []int{5, 10, 20, 50, 100, 200}
	}
	maxCache := networkSize
	if networkSize >= 5000 {
		maxCache = 1000
	}
	out := make([]int, 0, len(all))
	for _, c := range all {
		if c <= maxCache {
			out = append(out, c)
		}
	}
	return out
}

// networkSizesFor returns the network-size sweep.
func networkSizesFor(scale Scale) []int {
	if scale == Full {
		return []int{200, 500, 1000, 2000}
	}
	return []int{200, 400}
}
