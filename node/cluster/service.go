package cluster

// The shed-state service: the cluster-wide aggregation point for
// fair-admission sketches.
//
// Nodes push bucket deltas; the service folds them into the current
// accounting window and answers every push (and hello) with the merged
// aggregate — per-bucket max of the current and previous windows, so a
// client installs a full window's demand estimate even early in a
// window. All demand is keyed by the service's salt epoch: counts
// hashed under different salts land in unrelated buckets, so a push
// whose epoch mismatches is rejected rather than folded in, and a
// rotation (or a cold start) discards every counted window and starts
// a warming period during which clients are told not to trust the
// aggregate.
//
// Crash tolerance: the aggregate (windows, epoch, per-node sequence
// records) is snapshotted atomically — temp file + fsync + rename with
// a CRC-32 trailer, exactly the node/snapshot.go pattern — and
// restored on startup. The sequence records travel with the windows in
// one checksummed file, so a restored service either has both a
// delta's counts and the record that it was applied, or neither;
// re-sent deltas therefore never double-count. A snapshot older than
// one window restores the epoch but not the stale windows (warming); a
// corrupt snapshot cold-starts with a fresh epoch.

import (
	"errors"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/node"
)

// sketch is the service-side copy of the fair-admission counter
// geometry.
type sketch [node.FairLevels][node.FairBuckets]uint32

// pushSeq tracks one node's applied pushes: the instance nonce it last
// spoke with and the highest sequence number applied under it.
type pushSeq struct {
	Nonce   uint64
	LastSeq uint64
}

// ServiceConfig configures a shed-state service. Zero fields take
// defaults.
type ServiceConfig struct {
	// Window is the aggregation window; it should match the nodes'
	// AdmissionWindow so the aggregate reads as per-window demand.
	// Default 1s.
	Window time.Duration
	// RotateEvery, when positive, rotates the salt epoch on that
	// period. Rotation discards all counted demand (old-salt counts
	// are meaningless under the new salt) and re-enters warming.
	RotateEvery time.Duration
	// SnapshotPath, when set, enables crash recovery for the
	// aggregate.
	SnapshotPath string
	// SnapshotInterval is the period between snapshots. Default 10s.
	SnapshotInterval time.Duration
	// Metrics, when non-nil, receives the guess_cluster_* metric set.
	Metrics *obs.Registry
	// Logf, when non-nil, receives debug logging.
	Logf func(format string, args ...any)

	// now overrides the clock in unit tests; nil means time.Now.
	now func() time.Time
}

func (c ServiceConfig) withDefaults() ServiceConfig {
	if c.Window <= 0 {
		c.Window = time.Second
	}
	if c.SnapshotInterval <= 0 {
		c.SnapshotInterval = 10 * time.Second
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Service aggregates fair-admission sketches cluster-wide. Create with
// Serve; always Close.
type Service struct {
	cfg ServiceConfig
	ln  net.Listener
	met *obs.ServiceMetrics

	mu sync.Mutex
	// epoch is the salt epoch (the unix-nano instant it was minted, so
	// epochs are monotonic across restarts); salt is derived from it.
	epoch int64
	salt  uint64
	// winStart indexes the current window (unix-nano / Window);
	// cur/prev are the current and previous windows' merged counts.
	winStart  int64
	cur, prev sketch
	// warmUntil: until this instant the aggregate is too young to
	// trust (cold start, stale restore, or rotation) and replies carry
	// Warming so clients stay in local fallback.
	warmUntil time.Time
	// seqs dedupes re-sent pushes per node name.
	seqs map[string]pushSeq
	// conns tracks live connections so Close can drop them.
	conns map[net.Conn]struct{}

	closing   chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// Serve starts a shed-state service on ln. The service owns ln and
// closes it on Close.
func Serve(ln net.Listener, cfg ServiceConfig) (*Service, error) {
	cfg = cfg.withDefaults()
	if ln == nil {
		return nil, errors.New("cluster: Serve needs a listener")
	}
	s := &Service{
		cfg:     cfg,
		ln:      ln,
		met:     obs.NewServiceMetrics(cfg.Metrics),
		seqs:    make(map[string]pushSeq),
		conns:   make(map[net.Conn]struct{}),
		closing: make(chan struct{}),
	}
	now := cfg.now()
	if !s.restoreSnapshot(now) {
		s.rotateLocked(now) // cold start: fresh epoch, warming
	}
	s.met.SaltEpoch.Set(float64(s.epoch))
	s.wg.Add(2)
	//lint:goroexit-ok Close unblocks the accept and the per-conn reads: it closes the listener and every conn tracked in s.conns before wg.Wait
	go s.acceptLoop()
	go s.maintainLoop()
	return s, nil
}

// Addr returns the service's listen address.
func (s *Service) Addr() net.Addr { return s.ln.Addr() }

// Epoch returns the current salt epoch.
func (s *Service) Epoch() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Salt returns the current requester-hash salt.
func (s *Service) Salt() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.salt
}

// Warming reports whether the aggregate is still too young to trust.
func (s *Service) Warming() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg.now().Before(s.warmUntil)
}

// Estimate reads a requester key's cluster-wide per-window demand
// estimate out of the current aggregate (test and ops hook).
func (s *Service) Estimate(key uint64) uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rollLocked(s.cfg.now())
	agg := s.aggregateLocked()
	idx := node.FairIndices(key)
	est := ^uint32(0)
	for l := 0; l < node.FairLevels; l++ {
		if c := agg.Counts[l][idx[l]]; c < est {
			est = c
		}
	}
	return est
}

// Rotate forces a salt epoch rotation (ops/test hook; RotateEvery does
// this on a schedule).
func (s *Service) Rotate() {
	s.mu.Lock()
	s.rotateLocked(s.cfg.now())
	s.mu.Unlock()
	s.writeSnapshot()
}

// Close stops the service: a final snapshot is written, the listener
// and every live connection close. Idempotent.
func (s *Service) Close() error {
	s.closeOnce.Do(func() {
		close(s.closing)
		s.writeSnapshot()
		s.ln.Close()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
	})
	s.wg.Wait()
	return nil
}

func (s *Service) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// rotateLocked mints a fresh salt epoch at (or after) now, discards
// all counted demand, and re-enters warming; callers hold s.mu. floor
// lets the epoch-mismatch path guarantee the new epoch supersedes a
// client's.
func (s *Service) rotateLocked(now time.Time) {
	e := now.UnixNano()
	if e <= s.epoch {
		e = s.epoch + 1
	}
	s.epoch = e
	s.salt = saltOf(e)
	s.cur, s.prev = sketch{}, sketch{}
	s.winStart = now.UnixNano() / int64(s.cfg.Window)
	s.warmUntil = now.Add(s.cfg.Window)
	s.met.SaltRotations.Inc()
	s.met.SaltEpoch.Set(float64(e))
	s.met.Warming.Set(1)
	s.logf("cluster service: rotated to epoch %d", e)
}

// rollLocked advances the accounting window; callers hold s.mu.
func (s *Service) rollLocked(now time.Time) {
	win := now.UnixNano() / int64(s.cfg.Window)
	if win == s.winStart {
		return
	}
	if win == s.winStart+1 {
		s.prev = s.cur
	} else {
		s.prev = sketch{} // idle gap: nothing recent enough to carry
	}
	s.winStart = win
	s.cur = sketch{}
	if !now.Before(s.warmUntil) {
		s.met.Warming.Set(0)
	}
}

// aggregateLocked builds the merged per-window view: per-bucket max of
// the current and previous windows (a full window's demand even early
// in the current one), with the active-requester estimate from the
// level-0 buckets; callers hold s.mu.
func (s *Service) aggregateLocked() node.AdmissionAggregate {
	var agg node.AdmissionAggregate
	curActive, prevActive := 0, 0
	for l := 0; l < node.FairLevels; l++ {
		for b := 0; b < node.FairBuckets; b++ {
			c, p := s.cur[l][b], s.prev[l][b]
			if p > c {
				agg.Counts[l][b] = p
			} else {
				agg.Counts[l][b] = c
			}
			if l == 0 {
				if c > 0 {
					curActive++
				}
				if p > 0 {
					prevActive++
				}
			}
		}
	}
	agg.Active = curActive
	if prevActive > agg.Active {
		agg.Active = prevActive
	}
	return agg
}

// applyLocked folds a delta into the current window (saturating);
// callers hold s.mu.
func (s *Service) applyLocked(d *node.AdmissionDelta) {
	for l := 0; l < node.FairLevels; l++ {
		for b := 0; b < node.FairBuckets; b++ {
			if c := d.Counts[l][b]; c > 0 {
				if s.cur[l][b] > ^uint32(0)-c {
					s.cur[l][b] = ^uint32(0)
				} else {
					s.cur[l][b] += c
				}
			}
		}
	}
}

// acceptLoop accepts sync connections until close.
func (s *Service) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closing:
				return
			default:
			}
			s.logf("cluster service: accept: %v", err)
			select {
			case <-s.closing:
				return
			case <-time.After(10 * time.Millisecond):
			}
			continue
		}
		s.mu.Lock()
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.met.NodesConnected.Add(1)
		s.wg.Add(1)
		//lint:goroexit-ok the read is unblocked at shutdown by Close, which closes every conn tracked in s.conns
		go s.handleConn(c)
	}
}

// handleConn speaks the sync protocol with one node: hello, then a
// push/reply loop until the connection dies.
func (s *Service) handleConn(c net.Conn) {
	defer s.wg.Done()
	defer func() {
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		s.met.NodesConnected.Add(-1)
	}()
	hello, err := readSyncMsg(c)
	if err != nil || hello.Type != syncHello {
		return
	}
	// Answer the hello with the current view so the client learns the
	// epoch and salt before its first push.
	if err := writeSyncMsg(c, s.reply(0)); err != nil {
		return
	}
	for {
		m, err := readSyncMsg(c)
		if err != nil {
			return
		}
		if m.Type != syncPush {
			return
		}
		if err := writeSyncMsg(c, s.processPush(hello, m)); err != nil {
			return
		}
	}
}

// reply builds a syncAgg for the current state, acknowledging ack.
func (s *Service) reply(ack uint64) syncMsg {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.cfg.now()
	s.rollLocked(now)
	agg := s.aggregateLocked()
	return syncMsg{
		Type:    syncAgg,
		Epoch:   s.epoch,
		Salt:    s.salt,
		AckSeq:  ack,
		Agg:     &agg,
		Warming: now.Before(s.warmUntil),
	}
}

// processPush folds one push into the aggregate and builds the reply.
func (s *Service) processPush(hello, m syncMsg) syncMsg {
	s.mu.Lock()
	now := s.cfg.now()
	s.rollLocked(now)
	if m.Epoch != s.epoch {
		if m.Epoch > s.epoch {
			// The client holds a newer epoch than we do: we restored a
			// snapshot predating a rotation we performed. Our windows
			// and the client's sketches disagree beyond repair — mint
			// a fresh epoch newer than the client's so the whole
			// cluster converges on it.
			s.rotateLocked(time.Unix(0, maxInt64(now.UnixNano(), m.Epoch)))
		}
		s.met.RejectedPushes.Inc()
		rej := syncMsg{Type: syncReject, Epoch: s.epoch, Salt: s.salt, AckSeq: m.Seq}
		s.mu.Unlock()
		return rej
	}
	if m.Seq > 0 && m.Delta != nil {
		rec := s.seqs[hello.Node]
		if rec.Nonce != hello.Nonce {
			rec = pushSeq{Nonce: hello.Nonce} // new instance: fresh sequence space
		}
		if m.Seq <= rec.LastSeq {
			s.met.DuplicatePushes.Inc() // re-sent after a lost ack
		} else {
			s.applyLocked(m.Delta)
			rec.LastSeq = m.Seq
			s.seqs[hello.Node] = rec
			s.met.Pushes.Inc()
		}
	}
	agg := s.aggregateLocked()
	out := syncMsg{
		Type:    syncAgg,
		Epoch:   s.epoch,
		Salt:    s.salt,
		AckSeq:  m.Seq,
		Agg:     &agg,
		Warming: now.Before(s.warmUntil),
	}
	s.mu.Unlock()
	return out
}

// maintainLoop drives scheduled rotation and periodic snapshots.
func (s *Service) maintainLoop() {
	defer s.wg.Done()
	tick := s.cfg.SnapshotInterval
	if s.cfg.RotateEvery > 0 && s.cfg.RotateEvery < tick {
		tick = s.cfg.RotateEvery
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-s.closing:
			return
		case <-ticker.C:
			s.mu.Lock()
			now := s.cfg.now()
			if s.cfg.RotateEvery > 0 && now.Sub(time.Unix(0, s.epoch)) >= s.cfg.RotateEvery {
				s.rotateLocked(now)
			}
			s.mu.Unlock()
			// Snapshot on every maintenance tick; after a rotation the
			// on-disk snapshot is stale, so persisting here narrows
			// the window where a crash loses the new epoch.
			s.writeSnapshot()
		}
	}
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
