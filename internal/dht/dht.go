// Package dht implements a ring-structured lookup baseline with
// randomized replication and caching, after Sarshar & Roychowdhury
// (A Random Structure for Optimum Cache Size DHT P2P Design). Peers
// occupy positions 0..N-1 on a ring; each item hashes to a position
// whose first live successor owns the authoritative record. Records
// are replicated onto BaseReplicas live successors at publish time,
// plus randomly cached copies — one coin flip per provider copy — so
// the replica count of a key grows with its popularity and lookups for
// popular keys finish in far fewer than log N hops. Lookups route
// greedily over power-of-two fingers, fall back to successor walking
// past dead or lossy hops, and cache the record along the return path
// with probability CacheProb.
//
// The engine consumes the shared content substrate, draws from named
// simrng streams so runs are byte-identical per seed, drives the
// internal/eventq queue (one event per hop attempt), and emits
// internal/obs metrics and trace events like the GUESS and Gnutella
// paths. Churn is modeled as a static DeadFraction of offline peers.
package dht

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/content"
	"repro/internal/eventq"
	"repro/internal/obs"
	"repro/internal/simrng"
)

// Params configures a DHT-lookup run. The zero value is not valid;
// start from DefaultParams.
type Params struct {
	// NetworkSize is the number of ring positions (peers).
	NetworkSize int
	// BaseReplicas is the number of live successors holding each
	// published record (the owner included).
	BaseReplicas int
	// CacheSize is each peer's replica-cache capacity (0 disables
	// caching); eviction is random replacement.
	CacheSize int
	// CacheProb is the probability that each return-path peer caches
	// the record after a successful lookup.
	CacheProb float64
	// SeedCacheFraction is the publish-time coin: every provider copy
	// of an item seeds a cached replica at a random live peer with
	// this probability, so popular items start with many replicas.
	SeedCacheFraction float64
	// MaxHops is the per-lookup routing budget (hop attempts,
	// including attempts dropped by loss or dead peers).
	MaxHops int
	// HopLatency is the virtual seconds per hop attempt.
	HopLatency float64
	// NumLookups is the number of lookups to run.
	NumLookups int
	// NumDesiredResults is the provider count a record must carry for
	// the lookup to count as satisfied.
	NumDesiredResults int
	// LookupRate is the network-wide lookup arrival rate (lookups per
	// virtual second); inter-arrival times are exponential.
	LookupRate float64
	// DeadFraction is the fraction of peers offline for the whole run.
	DeadFraction float64
	// LossProb is the probability that any single message is lost.
	LossProb float64
	// Seed is the master RNG seed.
	Seed uint64
	// Content configures the shared content substrate.
	Content content.Params
}

// DefaultParams returns a small but representative configuration.
func DefaultParams() Params {
	return Params{
		NetworkSize:       400,
		BaseReplicas:      3,
		CacheSize:         16,
		CacheProb:         0.5,
		SeedCacheFraction: 0.05,
		MaxHops:           32,
		HopLatency:        0.05,
		NumLookups:        500,
		NumDesiredResults: 1,
		LookupRate:        2,
		DeadFraction:      0.1,
		LossProb:          0,
		Seed:              1,
		Content:           content.DefaultParams(),
	}
}

// validFrac reports whether f is a well-formed probability in [0, 1).
func validFrac(f float64) bool {
	return f >= 0 && f < 1 && !math.IsNaN(f)
}

// validProb reports whether f is a well-formed probability in [0, 1].
func validProb(f float64) bool {
	return f >= 0 && f <= 1 && !math.IsNaN(f)
}

// Validate checks parameter sanity, rejecting NaN and infinite floats
// so fuzzed configurations cannot smuggle non-finite arithmetic into
// the event loop.
func (p Params) Validate() error {
	switch {
	case p.NetworkSize < 2:
		return fmt.Errorf("dht: NetworkSize must be >= 2, got %d", p.NetworkSize)
	case p.BaseReplicas < 1 || p.BaseReplicas > p.NetworkSize:
		return fmt.Errorf("dht: BaseReplicas %d out of range for %d peers", p.BaseReplicas, p.NetworkSize)
	case p.CacheSize < 0:
		return fmt.Errorf("dht: CacheSize must be >= 0, got %d", p.CacheSize)
	case !validProb(p.CacheProb):
		return fmt.Errorf("dht: CacheProb must be in [0,1], got %v", p.CacheProb)
	case !validProb(p.SeedCacheFraction):
		return fmt.Errorf("dht: SeedCacheFraction must be in [0,1], got %v", p.SeedCacheFraction)
	case p.MaxHops < 1:
		return fmt.Errorf("dht: MaxHops must be >= 1, got %d", p.MaxHops)
	case !(p.HopLatency > 0) || math.IsInf(p.HopLatency, 0):
		return fmt.Errorf("dht: HopLatency must be positive and finite, got %v", p.HopLatency)
	case p.NumLookups < 1:
		return fmt.Errorf("dht: NumLookups must be >= 1, got %d", p.NumLookups)
	case p.NumDesiredResults < 1:
		return fmt.Errorf("dht: NumDesiredResults must be >= 1, got %d", p.NumDesiredResults)
	case !(p.LookupRate > 0) || math.IsInf(p.LookupRate, 0):
		return fmt.Errorf("dht: LookupRate must be positive and finite, got %v", p.LookupRate)
	case !validFrac(p.DeadFraction):
		return fmt.Errorf("dht: DeadFraction must be in [0,1), got %v", p.DeadFraction)
	case !validFrac(p.LossProb):
		return fmt.Errorf("dht: LossProb must be in [0,1), got %v", p.LossProb)
	}
	return p.Content.Validate()
}

// Results reports one DHT run. Message conservation holds by
// construction: MessagesSent == MessagesDelivered + MessagesDropped.
type Results struct {
	// Lookups partitions into Satisfied + Unsatisfied.
	Lookups     int
	Satisfied   int
	Unsatisfied int

	// Message totals over the whole run (hop attempts plus direct
	// responses).
	MessagesSent      int64
	MessagesDelivered int64
	MessagesDropped   int64

	// HopsTotal is the sum of hop attempts across lookups;
	// MaxHopsUsed is the largest per-lookup hop count.
	HopsTotal   int64
	MaxHopsUsed int

	// CacheHits counts lookups answered from a replica cache rather
	// than an owner or successor store.
	CacheHits int64

	// ResultsFound sums provider counts returned across lookups.
	ResultsFound int64

	// ResponseTimeSum is the total virtual seconds from lookup start
	// to completion.
	ResponseTimeSum float64

	// PeerLoads counts messages received per peer.
	PeerLoads []int64

	// Interrupted is set when the run was cancelled mid-flight.
	Interrupted bool
}

// Satisfaction returns the satisfied fraction of lookups.
func (r *Results) Satisfaction() float64 {
	if r.Lookups == 0 {
		return 0
	}
	return float64(r.Satisfied) / float64(r.Lookups)
}

// MessagesPerLookup returns the mean messages sent per lookup.
func (r *Results) MessagesPerLookup() float64 {
	if r.Lookups == 0 {
		return 0
	}
	return float64(r.MessagesSent) / float64(r.Lookups)
}

// AvgHops returns the mean hop attempts per lookup.
func (r *Results) AvgHops() float64 {
	if r.Lookups == 0 {
		return 0
	}
	return float64(r.HopsTotal) / float64(r.Lookups)
}

// record is one stored or cached replica: the item and its provider
// count across the network.
type record struct {
	item      content.ItemID
	providers int32
}

// peerState holds one peer's authoritative store and replica cache.
type peerState struct {
	store map[content.ItemID]int32
	// cache is a bounded random-replacement set; cacheIdx indexes it
	// for O(1) lookup.
	cache    []record
	cacheIdx map[content.ItemID]int
}

type evKind uint8

const (
	evLookupStart evKind = iota + 1
	evHop
)

type event struct {
	kind evKind
	q    *lookup
}

type lookup struct {
	id      uint64
	item    content.ItemID
	origin  int
	owner   int
	current int
	// skip selects the fallback candidate after dropped attempts: 0
	// routes via the best finger, s > 0 walks current+s linearly.
	skip     int
	hops     int
	messages int64
	start    float64
	path     []int
}

// Engine runs DHT lookups over one sampled ring and content
// assignment. Create with New, run once with Run.
type Engine struct {
	p        Params
	universe *content.Universe
	peers    []peerState
	dead     []bool

	rngWorkload *simrng.RNG
	rngCache    *simrng.RNG
	rngNet      *simrng.RNG

	now    float64
	events eventq.Queue[event]

	res   Results
	loads []int64

	observer obs.Observer
	met      *obs.DHTMetrics

	nextLookupID uint64
	freeQ        []*lookup

	ran bool
}

// New validates params, samples libraries from the content substrate,
// and publishes every shared item onto the ring (owner, successor
// replicas, and popularity-proportional seeded caches). The same
// params always yield the same engine state.
func New(params Params) (*Engine, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	root := simrng.New(params.Seed)
	universe, err := content.New(params.Content)
	if err != nil {
		return nil, err
	}
	n := params.NetworkSize
	e := &Engine{
		p:           params,
		universe:    universe,
		rngWorkload: root.Stream("workload"),
		rngCache:    root.Stream("cache"),
		rngNet:      root.Stream("net"),
		peers:       make([]peerState, n),
		loads:       make([]int64, n),
	}
	e.dead = make([]bool, n)
	k := int(params.DeadFraction * float64(n))
	if k >= n {
		k = n - 1
	}
	for _, v := range root.Stream("churn").Perm(n)[:k] {
		e.dead[v] = true
	}
	e.publish(root.Stream("content"))
	return e, nil
}

// publish samples live peers' libraries and places every shared item's
// record on the ring: the owner and BaseReplicas-1 further live
// successors store it authoritatively, and each provider copy seeds a
// cached replica at a random live peer with probability
// SeedCacheFraction — the randomized replication that gives popular
// keys their short lookups.
func (e *Engine) publish(rngContent *simrng.RNG) {
	n := e.p.NetworkSize
	providers := make([]int32, e.universe.NumItems())
	for v := 0; v < n; v++ {
		if e.dead[v] {
			continue
		}
		lib := e.universe.NewLibrary(rngContent, e.universe.SampleLibrarySize(rngContent))
		items := lib.Items()
		// Items() order is unspecified; sort so publication (and the
		// cache-seeding RNG draws) are deterministic.
		sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
		for _, it := range items {
			providers[it]++
		}
	}
	for it, count := range providers {
		if count == 0 {
			continue
		}
		item := content.ItemID(it)
		owner := e.firstLive(e.ringPos(item))
		e.storeAt(owner, item, count)
		succ := owner
		for r := 1; r < e.p.BaseReplicas; r++ {
			succ = e.firstLive((succ + 1) % n)
			if succ == owner {
				break // fewer live peers than replicas
			}
			e.storeAt(succ, item, count)
		}
		for c := int32(0); c < count; c++ {
			if e.rngCache.Bool(e.p.SeedCacheFraction) {
				e.cacheAt(e.randomLivePeer(e.rngCache), item, count)
			}
		}
	}
}

// ringPos hashes an item to a ring position (SplitMix64 finalizer).
func (e *Engine) ringPos(item content.ItemID) int {
	z := uint64(int64(item)) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(e.p.NetworkSize))
}

// firstLive returns the first live peer at or clockwise of pos. At
// least one peer is live by construction.
func (e *Engine) firstLive(pos int) int {
	n := e.p.NetworkSize
	for i := 0; i < n; i++ {
		v := (pos + i) % n
		if !e.dead[v] {
			return v
		}
	}
	return pos // unreachable
}

func (e *Engine) randomLivePeer(r *simrng.RNG) int {
	for {
		v := r.Intn(e.p.NetworkSize)
		if !e.dead[v] {
			return v
		}
	}
}

func (e *Engine) storeAt(v int, item content.ItemID, providers int32) {
	ps := &e.peers[v]
	if ps.store == nil {
		ps.store = make(map[content.ItemID]int32)
	}
	ps.store[item] = providers
}

// cacheAt inserts a cached replica at v, evicting a random entry when
// the cache is full. Peers already storing or caching the item keep
// their existing copy.
func (e *Engine) cacheAt(v int, item content.ItemID, providers int32) {
	if e.p.CacheSize == 0 {
		return
	}
	ps := &e.peers[v]
	if _, ok := ps.store[item]; ok {
		return
	}
	if ps.cacheIdx == nil {
		ps.cacheIdx = make(map[content.ItemID]int)
	}
	if _, ok := ps.cacheIdx[item]; ok {
		return
	}
	rec := record{item: item, providers: providers}
	if len(ps.cache) < e.p.CacheSize {
		ps.cacheIdx[item] = len(ps.cache)
		ps.cache = append(ps.cache, rec)
		return
	}
	i := e.rngCache.Intn(len(ps.cache))
	delete(ps.cacheIdx, ps.cache[i].item)
	ps.cache[i] = rec
	ps.cacheIdx[item] = i
}

// recordAt returns the record for item held at v, and whether it came
// from the replica cache.
func (e *Engine) recordAt(v int, item content.ItemID) (providers int32, cached, ok bool) {
	ps := &e.peers[v]
	if p, hit := ps.store[item]; hit {
		return p, false, true
	}
	if i, hit := ps.cacheIdx[item]; hit {
		return ps.cache[i].providers, true, true
	}
	return 0, false, false
}

// SetObserver attaches a trace observer. Observers receive events but
// never consume randomness or influence control flow, so attaching one
// leaves Results byte-identical.
func (e *Engine) SetObserver(o obs.Observer) { e.observer = o }

// SetMetrics attaches a metric set (nil disables metrics). Like
// observers, metrics never perturb the run.
func (e *Engine) SetMetrics(m *obs.DHTMetrics) { e.met = m }

// ctxCheckInterval matches the core engine's cancellation granularity,
// scaled down because round and hop events are far coarser than core's
// per-probe events.
const ctxCheckInterval = 64

// Run executes the configured number of lookups and returns the run's
// Results. It may be called once per Engine.
func (e *Engine) Run(ctx context.Context) (*Results, error) {
	if e.ran {
		return nil, fmt.Errorf("dht: Engine.Run called twice")
	}
	e.ran = true
	if ctx != nil && ctx.Err() != nil {
		e.res.Interrupted = true
		e.finalize()
		return &e.res, nil
	}
	t := 0.0
	for i := 0; i < e.p.NumLookups; i++ {
		t += e.rngWorkload.ExpFloat64() / e.p.LookupRate
		e.events.Push(t, event{kind: evLookupStart, q: e.newLookup()})
	}
	processed := 0
	for {
		when, ev, ok := e.events.Pop()
		if !ok {
			break
		}
		e.now = when
		processed++
		if processed%ctxCheckInterval == 0 && ctx != nil {
			select {
			case <-ctx.Done():
				// Like core.Engine, a cancelled run returns its partial
				// results with Interrupted set and no error.
				e.res.Interrupted = true
				e.finalize()
				return &e.res, nil
			default:
			}
		}
		switch ev.kind {
		case evLookupStart:
			e.startLookup(ev.q)
		case evHop:
			e.handleHop(ev.q)
		}
	}
	e.finalize()
	return &e.res, nil
}

func (e *Engine) finalize() {
	e.res.PeerLoads = e.loads
}

func (e *Engine) newLookup() *lookup {
	if n := len(e.freeQ); n > 0 {
		q := e.freeQ[n-1]
		e.freeQ = e.freeQ[:n-1]
		return q
	}
	return &lookup{}
}

func (e *Engine) startLookup(q *lookup) {
	e.nextLookupID++
	q.id = e.nextLookupID
	q.start = e.now
	q.hops = 0
	q.messages = 0
	q.skip = 0
	q.path = q.path[:0]
	q.item = e.universe.DrawQuery(e.rngWorkload)
	q.origin = e.randomLivePeer(e.rngWorkload)
	q.current = q.origin
	// NoItem hashes like any key; the lookup routes to the owner of
	// that position and misses there, modeling queries for content
	// that exists nowhere.
	q.owner = e.firstLive(e.ringPos(q.item))
	if e.observer != nil {
		e.observer.Observe(obs.Event{
			Kind: obs.EvQueryIssued, Time: e.now,
			Query: q.id, Peer: uint64(q.origin),
		})
	}
	// Local store or cache may already hold the record: a zero-hop hit.
	if providers, cached, ok := e.recordAt(q.origin, q.item); ok {
		e.finishFound(q, providers, cached)
		return
	}
	if q.origin == q.owner {
		e.finishMiss(q)
		return
	}
	e.events.Push(e.now+e.p.HopLatency, event{kind: evHop, q: q})
}

// ringDist is the clockwise distance from a to b.
func (e *Engine) ringDist(a, b int) int {
	d := b - a
	if d < 0 {
		d += e.p.NetworkSize
	}
	return d
}

// nextCandidate picks the next routing target from q.current: the
// largest power-of-two finger not overshooting the owner, or — after
// q.skip dropped attempts — a linear successor walk. It returns -1
// when every remaining candidate has been tried.
func (e *Engine) nextCandidate(q *lookup) int {
	d := e.ringDist(q.current, q.owner)
	if q.skip == 0 {
		step := 1
		for step*2 <= d {
			step *= 2
		}
		return (q.current + step) % e.p.NetworkSize
	}
	if q.skip > d {
		return -1
	}
	return (q.current + q.skip) % e.p.NetworkSize
}

// handleHop performs one routing hop attempt (one message) and either
// finishes the lookup or schedules the next attempt.
func (e *Engine) handleHop(q *lookup) {
	if q.hops >= e.p.MaxHops {
		e.finishExhausted(q)
		return
	}
	cand := e.nextCandidate(q)
	if cand < 0 {
		e.finishExhausted(q)
		return
	}
	q.hops++
	e.res.HopsTotal++
	if e.met != nil {
		e.met.Hops.Inc()
	}
	delivered := e.send(q, cand)
	if e.observer != nil {
		outcome := obs.OutcomeDead
		if delivered {
			outcome = obs.OutcomeGood
		}
		e.observer.Observe(obs.Event{
			Kind: obs.EvProbe, Time: e.now,
			Query: q.id, Peer: uint64(q.current), Target: uint64(cand),
			Outcome: outcome,
		})
	}
	if !delivered {
		q.skip++
		e.events.Push(e.now+e.p.HopLatency, event{kind: evHop, q: q})
		return
	}
	q.current = cand
	q.skip = 0
	q.path = append(q.path, cand)
	if providers, cached, ok := e.recordAt(cand, q.item); ok {
		e.finishFound(q, providers, cached)
		return
	}
	if cand == q.owner {
		e.finishMiss(q) // authoritative miss: the item exists nowhere
		return
	}
	e.events.Push(e.now+e.p.HopLatency, event{kind: evHop, q: q})
}

// send accounts one message to dst and reports whether it was
// delivered (dst live and the message not lost).
func (e *Engine) send(q *lookup, dst int) bool {
	q.messages++
	e.res.MessagesSent++
	if e.met != nil {
		e.met.Messages.Inc()
	}
	if e.rngNet.Bool(e.p.LossProb) || e.dead[dst] {
		e.res.MessagesDropped++
		if e.met != nil {
			e.met.Dropped.Inc()
		}
		return false
	}
	e.res.MessagesDelivered++
	e.loads[dst]++
	if e.met != nil {
		e.met.Delivered.Inc()
	}
	return true
}

// finishFound handles a record hit at q.current: a direct response
// travels back to the origin (lost responses fail the lookup), and the
// record is cached along the forward path with probability CacheProb.
func (e *Engine) finishFound(q *lookup, providers int32, cached bool) {
	if cached {
		e.res.CacheHits++
		if e.met != nil {
			e.met.CacheHits.Inc()
		}
	}
	responseOK := true
	if q.current != q.origin {
		responseOK = e.send(q, q.origin)
	}
	if responseOK {
		for _, v := range q.path {
			if v == q.current {
				continue // the answering peer already holds it
			}
			if e.rngCache.Bool(e.p.CacheProb) {
				e.cacheAt(v, q.item, providers)
			}
		}
		if q.origin != q.current && e.rngCache.Bool(e.p.CacheProb) {
			e.cacheAt(q.origin, q.item, providers)
		}
	}
	satisfied := responseOK && int(providers) >= e.p.NumDesiredResults
	if responseOK {
		e.res.ResultsFound += int64(providers)
	}
	e.finish(q, satisfied, int(providers))
}

func (e *Engine) finishMiss(q *lookup)      { e.finish(q, false, 0) }
func (e *Engine) finishExhausted(q *lookup) { e.finish(q, false, 0) }

func (e *Engine) finish(q *lookup, satisfied bool, results int) {
	e.res.Lookups++
	outcome := obs.OutcomeExhausted
	if satisfied {
		e.res.Satisfied++
		outcome = obs.OutcomeSatisfied
	} else {
		e.res.Unsatisfied++
	}
	if q.hops > e.res.MaxHopsUsed {
		e.res.MaxHopsUsed = q.hops
	}
	e.res.ResponseTimeSum += e.now - q.start
	if e.met != nil {
		e.met.Lookups.Inc()
		if satisfied {
			e.met.Satisfied.Inc()
		} else {
			e.met.Unsatisfied.Inc()
		}
		e.met.LookupHops.Observe(float64(q.hops))
	}
	if e.observer != nil {
		e.observer.Observe(obs.Event{
			Kind: obs.EvQueryDone, Time: e.now,
			Query: q.id, Peer: uint64(q.origin),
			Outcome: outcome, Probes: int(q.messages), Results: results,
		})
	}
	e.freeQ = append(e.freeQ, q)
}

// Run is a convenience wrapper: build an engine and run it.
func Run(ctx context.Context, params Params) (*Results, error) {
	e, err := New(params)
	if err != nil {
		return nil, err
	}
	return e.Run(ctx)
}
