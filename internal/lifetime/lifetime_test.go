package lifetime

import (
	"math"
	"sort"
	"testing"

	"repro/internal/dist"
	"repro/internal/simrng"
)

func TestNewRejectsBadMultiplier(t *testing.T) {
	for _, m := range []float64{0, -1} {
		if _, err := New(m); err == nil {
			t.Errorf("New(%v) accepted", m)
		}
	}
}

func TestSamplesPositive(t *testing.T) {
	m, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	r := simrng.New(1)
	for i := 0; i < 10000; i++ {
		if v := m.Sample(r); v <= 0 {
			t.Fatalf("non-positive lifetime %v", v)
		}
	}
}

func TestMedianAboutOneHour(t *testing.T) {
	m, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	r := simrng.New(2)
	const n = 50001
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = m.Sample(r)
	}
	sort.Float64s(samples)
	median := samples[n/2]
	if median < 3000 || median > 4200 {
		t.Fatalf("median lifetime %v s, want ~3600 s", median)
	}
}

func TestMultiplierScales(t *testing.T) {
	base, _ := New(1)
	scaled, _ := New(0.2)
	// Identical seeds must give exactly 0.2x the lifetimes.
	r1, r2 := simrng.New(7), simrng.New(7)
	for i := 0; i < 1000; i++ {
		a, b := base.Sample(r1), scaled.Sample(r2)
		if math.Abs(b-0.2*a) > 1e-9*a {
			t.Fatalf("scaling broken: %v vs 0.2*%v", b, a)
		}
	}
	if got, want := scaled.Mean(), 0.2*base.Mean(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("scaled mean %v, want %v", got, want)
	}
}

func TestHeavyTail(t *testing.T) {
	m, _ := New(1)
	r := simrng.New(3)
	const n = 100000
	over8h, under10m := 0, 0
	for i := 0; i < n; i++ {
		v := m.Sample(r)
		if v > 8*3600 {
			over8h++
		}
		if v < 600 {
			under10m++
		}
	}
	if f := float64(over8h) / n; f < 0.05 || f > 0.15 {
		t.Errorf("fraction of sessions > 8h = %v, want ~0.10", f)
	}
	if f := float64(under10m) / n; f < 0.18 || f > 0.32 {
		t.Errorf("fraction of sessions < 10m = %v, want ~0.25", f)
	}
}

func TestNewFromSamplerFloorsNonPositive(t *testing.T) {
	m := NewFromSampler(dist.Constant{V: -5})
	if v := m.Sample(simrng.New(1)); v <= 0 {
		t.Fatalf("Sample returned non-positive %v from degenerate sampler", v)
	}
}
