package orchestrate

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

// Config configures a Coordinator. The zero value is usable: two
// reassignments per unit, a two-minute unit timeout, no cache, no
// metrics, no dashboard.
type Config struct {
	// MaxRetries bounds how many times one unit may be reassigned
	// after a worker failure before the run fails. 0 means the default
	// (2); negative disables retries entirely.
	MaxRetries int
	// UnitTimeout bounds how long a dispatched unit may take before
	// its worker is declared dead and the unit reassigned. 0 means the
	// default (2 minutes); negative disables the timeout.
	UnitTimeout time.Duration
	// Cache, when non-nil, is consulted before dispatch and fed every
	// computed result, sharing points across runs and with the sweep
	// memo's disk form.
	Cache Cache
	// Metrics, when non-nil, receives the workers' per-unit metric
	// snapshots, folded in unit order after a run completes.
	Metrics *obs.Registry
	// Dashboard, when non-nil, is updated on every state change.
	Dashboard *Dashboard
}

const (
	defaultMaxRetries  = 2
	defaultUnitTimeout = 2 * time.Minute
)

// Stats counts coordinator activity over its lifetime. UnitsTotal and
// UnitsDone count deduplicated units (cache hits included); Executed
// counts units actually computed by workers; Deduped counts the input
// points beyond the first that shared a unit.
type Stats struct {
	Workers    int
	UnitsTotal int
	UnitsDone  int
	Executed   int
	CacheHits  int
	Deduped    int
	Reassigned int
	Duplicates int
}

// unit lifecycle states.
const (
	unitPending = iota
	unitRunning
	unitDone
)

// unit is one deduplicated work unit of the active run.
type unit struct {
	id      int
	key     string
	pt      experiments.Point
	indices []int // positions in the input batch this unit fills
	state   int
	retries int
	snap    *obs.Snapshot
}

// runState is one RunPoints invocation in flight.
type runState struct {
	units     []*unit
	queue     []int // pending unit ids, dispatch order
	remaining int
	failed    error
	done      chan struct{}
	results   []experiments.PointResult
}

// Coordinator decomposes sweeps into content-addressed work units and
// executes them on connected workers. It implements
// experiments.Executor; plug it into Options.Executor and every sweep
// of the experiment runs distributed.
//
// One RunPoints call is active at a time (the experiment harness runs
// specs sequentially); workers may come and go freely — a sweep
// dispatched with no workers connected simply waits for the first one.
type Coordinator struct {
	cfg Config

	mu      sync.Mutex
	cond    *sync.Cond
	closed  bool
	workers int
	run     *runState
	stats   Stats
}

var _ experiments.Executor = (*Coordinator)(nil)

// New returns a Coordinator with the given configuration.
func New(cfg Config) *Coordinator {
	c := &Coordinator{cfg: cfg}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *Coordinator) maxRetries() int {
	switch {
	case c.cfg.MaxRetries < 0:
		return 0
	case c.cfg.MaxRetries == 0:
		return defaultMaxRetries
	}
	return c.cfg.MaxRetries
}

func (c *Coordinator) unitTimeout() time.Duration {
	switch {
	case c.cfg.UnitTimeout < 0:
		return 0
	case c.cfg.UnitTimeout == 0:
		return defaultUnitTimeout
	}
	return c.cfg.UnitTimeout
}

// Stats returns a snapshot of the lifetime counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// publish pushes current stats to the dashboard; callers hold c.mu.
// A closed coordinator stops publishing so shutdown churn (workers
// unwinding) does not scroll past the final sweep state.
func (c *Coordinator) publish() {
	if c.closed {
		return
	}
	c.cfg.Dashboard.update(c.stats)
}

// Close shuts the coordinator down: the active run (if any) fails, and
// worker handlers return once their current unit settles.
func (c *Coordinator) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	if c.run != nil {
		c.finishLocked(c.run, errors.New("orchestrate: coordinator closed"))
	}
	c.cond.Broadcast()
}

// finishLocked ends run r with err (nil for success); callers hold
// c.mu.
func (c *Coordinator) finishLocked(r *runState, err error) {
	if c.run != r {
		return
	}
	r.failed = err
	c.run = nil
	close(r.done)
	c.cond.Broadcast()
}

// RunPoints implements experiments.Executor: deduplicate the batch
// into units, satisfy what the cache can, dispatch the rest to
// workers, and assemble results in input order. On failure (retries
// exhausted, context canceled, coordinator closed) no partial results
// are returned.
func (c *Coordinator) RunPoints(ctx context.Context, pts []experiments.Point) ([]experiments.PointResult, error) {
	if len(pts) == 0 {
		return nil, nil
	}
	r := &runState{
		results: make([]experiments.PointResult, len(pts)),
		done:    make(chan struct{}),
	}
	byKey := make(map[string]*unit, len(pts))
	deduped := 0
	for i, pt := range pts {
		if err := pt.Validate(); err != nil {
			return nil, err
		}
		key := pt.Key()
		if u, ok := byKey[key]; ok {
			u.indices = append(u.indices, i)
			deduped++
			continue
		}
		u := &unit{id: len(r.units), key: key, pt: pt, indices: []int{i}}
		byKey[key] = u
		r.units = append(r.units, u)
	}
	cacheHits := 0
	for _, u := range r.units {
		if c.cfg.Cache != nil {
			if pr, ok := c.cfg.Cache.Get(u.key); ok && pr.Family == u.pt.Family && pr.Validate() == nil {
				u.state = unitDone
				for _, i := range u.indices {
					r.results[i] = pr
				}
				cacheHits++
				continue
			}
		}
		r.queue = append(r.queue, u.id)
		r.remaining++
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("orchestrate: coordinator closed")
	}
	if c.run != nil {
		c.mu.Unlock()
		return nil, errors.New("orchestrate: a sweep is already running")
	}
	c.stats.UnitsTotal += len(r.units)
	c.stats.UnitsDone += cacheHits
	c.stats.CacheHits += cacheHits
	c.stats.Deduped += deduped
	if r.remaining == 0 {
		c.publish()
		c.mu.Unlock()
		return r.results, nil
	}
	c.run = r
	c.publish()
	c.cond.Broadcast()
	c.mu.Unlock()

	select {
	case <-ctx.Done():
		c.mu.Lock()
		c.finishLocked(r, ctx.Err())
		c.mu.Unlock()
		<-r.done
	case <-r.done:
	}
	if r.failed != nil {
		return nil, r.failed
	}
	// Fold the workers' metric snapshots in unit order — deterministic
	// regardless of which worker finished which unit when. Cached units
	// carry no snapshot (their run's metrics were folded when they were
	// first computed), matching the in-process memo's semantics.
	if c.cfg.Metrics != nil {
		for _, u := range r.units {
			if u.snap == nil {
				continue
			}
			if err := c.cfg.Metrics.Merge(*u.snap); err != nil {
				return nil, fmt.Errorf("orchestrate: merging unit %d metrics: %w", u.id, err)
			}
		}
	}
	return r.results, nil
}

// WaitWorkers blocks until at least n workers are connected (or the
// coordinator closes). LocalPool uses it so a pool is fully staffed
// before its first sweep, and the sweep CLI's -min-workers gate so
// dispatch starts against a known fleet — startup is deterministic,
// not raced.
func (c *Coordinator) WaitWorkers(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for !c.closed && c.workers < n {
		c.cond.Wait()
	}
}

// next blocks until a unit is available for dispatch (or the
// coordinator closes). It returns the run the unit belongs to so
// completions can be matched against the right run even after it ends.
func (c *Coordinator) next() (*runState, *unit, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.closed {
			return nil, nil, false
		}
		if c.run != nil && len(c.run.queue) > 0 {
			r := c.run
			id := r.queue[0]
			r.queue = r.queue[1:]
			u := r.units[id]
			u.state = unitRunning
			return r, u, true
		}
		c.cond.Wait()
	}
}

// complete records a finished unit; late or repeated completions (a
// unit already settled by another worker after a reassignment) are
// counted and dropped.
func (c *Coordinator) complete(r *runState, u *unit, res *unitResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.run != r || u.state != unitRunning {
		c.stats.Duplicates++
		c.publish()
		return
	}
	u.state = unitDone
	u.snap = res.Metrics
	for _, i := range u.indices {
		r.results[i] = res.Result
	}
	r.remaining--
	c.stats.UnitsDone++
	c.stats.Executed++
	if c.cfg.Cache != nil {
		c.cfg.Cache.Put(u.key, res.Result)
	}
	if r.remaining == 0 {
		c.finishLocked(r, nil)
	}
	c.publish()
}

// fail returns a dispatched unit to the queue after a worker failure,
// failing the whole run once the unit's retry budget is exhausted.
func (c *Coordinator) fail(r *runState, u *unit, cause error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.run != r || u.state != unitRunning {
		return
	}
	if u.retries >= c.maxRetries() {
		c.finishLocked(r, fmt.Errorf("orchestrate: unit %d (%s) failed after %d attempts: %w",
			u.id, u.key, u.retries+1, cause))
		return
	}
	u.retries++
	u.state = unitPending
	r.queue = append(r.queue, u.id)
	c.stats.Reassigned++
	c.publish()
	c.cond.Broadcast()
}

// Serve accepts worker connections until the listener closes.
func (c *Coordinator) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go c.HandleWorker(conn)
	}
}

// HandleWorker serves one worker connection: read its hello, then
// dispatch units to it until it fails or the coordinator closes. Any
// connection error fails the worker's in-flight unit (triggering
// reassignment) and drops the connection; the rest of the sweep
// continues on the surviving workers.
func (c *Coordinator) HandleWorker(conn net.Conn) error {
	defer conn.Close()
	hello, err := recvMsg(conn)
	if err != nil {
		return fmt.Errorf("orchestrate: worker hello: %w", err)
	}
	if hello.Type != msgHello {
		return fmt.Errorf("orchestrate: expected hello, got %q", hello.Type)
	}
	c.mu.Lock()
	c.workers++
	c.stats.Workers = c.workers
	c.publish()
	c.cond.Broadcast() // wake WaitWorkers
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.workers--
		c.stats.Workers = c.workers
		c.publish()
		c.mu.Unlock()
	}()
	for {
		r, u, ok := c.next()
		if !ok {
			return nil
		}
		if err := c.dispatch(conn, r, u); err != nil {
			c.fail(r, u, err)
			return err
		}
	}
}

// dispatch sends one unit to a worker and waits for its result under
// the unit timeout. A nil return means the unit settled (completed, or
// failed cleanly with an error message and already requeued); a
// non-nil return means the connection is unusable.
func (c *Coordinator) dispatch(conn net.Conn, r *runState, u *unit) error {
	if err := sendMsg(conn, message{Type: msgUnit, Unit: &workUnit{ID: u.id, Key: u.key, Point: u.pt}}); err != nil {
		return err
	}
	if d := c.unitTimeout(); d > 0 {
		// The unit deadline is a liveness watchdog for real crashed or
		// wedged workers, not simulation input — results remain a pure
		// function of the parameters no matter when the clock fires.
		//lint:wallclock-ok liveness watchdog on a worker connection; never observable in results
		if err := conn.SetReadDeadline(time.Now().Add(d)); err != nil {
			return err
		}
		defer conn.SetReadDeadline(time.Time{})
	}
	m, err := recvMsg(conn)
	if err != nil {
		return err
	}
	switch m.Type {
	case msgResult:
		res := m.Result
		if res.ID != u.id || res.Key != u.key {
			return fmt.Errorf("orchestrate: result for unit %d (%s), expected %d (%s)", res.ID, res.Key, u.id, u.key)
		}
		if err := res.Result.Validate(); err != nil {
			return fmt.Errorf("orchestrate: unit %d result invalid: %w", u.id, err)
		}
		if res.Result.Family != u.pt.Family {
			return fmt.Errorf("orchestrate: unit %d result family %q, expected %q", u.id, res.Result.Family, u.pt.Family)
		}
		c.complete(r, u, res)
		return nil
	case msgError:
		// The worker executed the unit and reported a clean failure;
		// the connection itself is fine, so requeue and keep serving.
		c.fail(r, u, errors.New(m.Error))
		return nil
	default:
		return fmt.Errorf("orchestrate: unexpected %q while awaiting unit %d", m.Type, u.id)
	}
}
