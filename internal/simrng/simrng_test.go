package simrng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: %d != %d", i, got, want)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("mean of uniform draws = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	if err := quick.Check(func(n16 uint16) bool {
		n := int(n16) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniform(t *testing.T) {
	r := New(5)
	const n, draws = 10, 100000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Fatalf("bucket %d: %d draws, want ~%v", i, c, want)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 0},
		{1, 1},
		{-0.5, 0},
		{1.5, 1},
		{0.25, 0.25},
	}
	for _, tt := range tests {
		r := New(13)
		hits := 0
		const n = 100000
		for i := 0; i < n; i++ {
			if r.Bool(tt.p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-tt.want) > 0.01 {
			t.Errorf("Bool(%v): hit rate %v, want ~%v", tt.p, got, tt.want)
		}
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(17)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64() = %v < 0", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("mean = %v, want ~1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(19)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has len %d", n, len(p))
		}
		seen := make(map[int]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(29)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed element sum: %d != %d", got, sum)
	}
}

func TestStreamIndependence(t *testing.T) {
	// Deriving a stream must not advance the parent, and the same name
	// must always yield the same stream.
	r1 := New(99)
	s1 := r1.Stream("churn")
	v1 := r1.Uint64()

	r2 := New(99)
	v2 := r2.Uint64() // draw first, derive after
	s2 := r2.Stream("churn")

	if v1 != v2 {
		t.Fatal("deriving a stream perturbed the parent sequence")
	}
	for i := 0; i < 100; i++ {
		if s1.Uint64() != s2.Uint64() {
			t.Fatal("same-named streams differ")
		}
	}
}

func TestStreamNamesDiffer(t *testing.T) {
	r := New(99)
	a := r.Stream("alpha")
	b := r.Stream("beta")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different names agreed on %d draws", same)
	}
}

func TestSplitAdvancesParent(t *testing.T) {
	a := New(7)
	b := New(7)
	_ = a.Split()
	if a.Uint64() == b.Uint64() {
		t.Fatal("Split did not advance the parent generator")
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Float64()
	}
}
