package analysis

// Interprocedural scaffolding: a program-level call graph over every
// loaded package's function declarations (and function literals), with
// per-function fact summaries propagated bottom-up over the strongly-
// connected-component order. The summaries let analyzers reason one or
// more calls deep without x/tools: detrand and maporder use the taint
// facts to catch helpers that launder wall-clock reads or map-iteration
// order across a call boundary, and the concurrency analyzers
// (atomicfield, lockguard, goroexit, wirebound) use the structural
// facts (receives, conn reads, deadlines, decoded-length returns).
//
// In standalone mode the Program spans every package guess-lint loaded,
// so summaries cross package boundaries; under `go vet -vettool` only
// one package's syntax is available per invocation, so cross-package
// facts degrade gracefully to same-package ones (vet-mode findings are
// a subset of standalone findings, never a superset).

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FuncFacts is the bottom-up summary of one function (or function
// literal). Taint facts (wall clock, ambient RNGs) record the source
// position and a human-readable description of the originating call so
// call-site diagnostics can point at the root cause; structural facts
// are plain booleans.
type FuncFacts struct {
	// WallClock is a wall-clock-reading call reachable from this
	// function (time.Now and friends), token.NoPos if none. Sites
	// carrying a reasoned //lint:wallclock-ok suppression do not taint:
	// the annotation vouches that the nondeterminism stays contained.
	WallClock     token.Pos
	WallClockDesc string
	// GlobalRand is a draw from the hidden auto-seeded math/rand(/v2)
	// globals reachable from this function.
	GlobalRand     token.Pos
	GlobalRandDesc string
	// CryptoRand is a crypto/rand use reachable from this function.
	CryptoRand     token.Pos
	CryptoRandDesc string

	// MapOrderedReturn reports that the function returns a value whose
	// element order derives from map iteration (unsorted keys/values
	// slices, iter.Seq yields out of a map range, maps.Keys pass-
	// throughs). Ranging over a call to such a function is ranging over
	// a map.
	MapOrderedReturn bool

	// HasReceive reports a channel receive (<-ch, select with receive
	// cases, or range over a channel) reachable from this function —
	// the shape of a bounded goroutine exit path.
	HasReceive bool
	// HasAfterFunc reports a context.AfterFunc registration reachable
	// from this function: the idiom that closes a connection on context
	// cancellation to fail a blocked read.
	HasAfterFunc bool
	// ReadsConn reports a blocking read on a net.Conn reachable from
	// this function (a Read-family method on a net.Conn, io.ReadFull
	// and friends fed a net.Conn, or a reader-consuming helper handed a
	// net.Conn).
	ReadsConn bool
	// ReadsReader reports that the function reads from one of its own
	// io.Reader-like parameters; callers that pass a net.Conn into such
	// a parameter are charged with ReadsConn.
	ReadsReader bool
	// SetsDeadline reports a SetDeadline/SetReadDeadline/
	// SetWriteDeadline call reachable from this function.
	SetsDeadline bool
	// HasUnboundedLoop reports a `for { ... }` loop with no condition,
	// no return, and no break reachable from this function — the shape
	// that keeps a goroutine alive forever unless something else (a
	// channel receive, a failing read) breaks it out.
	HasUnboundedLoop bool

	// ReturnsWireInt reports that the function returns an integer
	// decoded from raw bytes (binary.XxxEndian, byte-slice indexing, or
	// a call to another such decoder) — the taint source wirebound
	// tracks into unbounded allocations.
	ReturnsWireInt bool
}

// A CallEdge is one call site from a function to another function in
// the program.
type CallEdge struct {
	Callee *FuncNode
	Pos    token.Pos
	// PassesConn reports that some argument at this call site is a
	// net.Conn (statically).
	PassesConn bool
	// PassesReader reports that some argument is an interface-typed
	// parameter of the calling function itself — the shape that chains
	// reader consumption up through wrapper helpers (readMsg(r) calling
	// frame.Read(r, max)).
	PassesReader bool
}

// A FuncNode is one function in the program call graph: a declared
// function or method (Decl non-nil) or a function literal (Lit
// non-nil).
type FuncNode struct {
	Obj   *types.Func // nil for literals
	Decl  *ast.FuncDecl
	Lit   *ast.FuncLit
	Pkg   *Package
	Calls []CallEdge
	Facts FuncFacts

	params         map[types.Object]bool // this function's own parameters
	index, lowlink int                   // Tarjan bookkeeping
	onStack        bool
}

// Body returns the function's body block (nil for body-less decls).
func (n *FuncNode) Body() *ast.BlockStmt {
	if n.Lit != nil {
		return n.Lit.Body
	}
	return n.Decl.Body
}

// Name renders a diagnostic-friendly function name.
func (n *FuncNode) Name() string {
	if n.Obj != nil {
		if recv := n.Obj.Type().(*types.Signature).Recv(); recv != nil {
			return types.TypeString(recv.Type(), types.RelativeTo(n.Obj.Pkg())) + "." + n.Obj.Name()
		}
		return n.Obj.Name()
	}
	return "func literal"
}

// A Program is the call graph and summary table over every loaded
// package, shared by all analyzers of a run through Pass.Prog.
type Program struct {
	funcs map[string]*FuncNode // keyed by funcKey
	lits  map[*ast.FuncLit]*FuncNode
	all   []*FuncNode

	// atomicFields maps struct fields passed by address to sync/atomic
	// functions to the first such call site, keyed by FieldKey. String
	// keys, not *types.Var: every package is type-checked with its own
	// importer, so two packages' views of the same field are distinct
	// objects that must still collide here.
	atomicFields map[string]token.Position

	// dirs are the run's //lint: directives; fact computation consults
	// them so a reasoned suppression at a taint source stops the taint
	// instead of resurfacing it at every caller.
	dirs map[string][]*directive
}

// suppressedAt reports a reasoned directive at pos (same line or the
// line above) and marks it used, mirroring Pass.Suppressed for fact
// computation.
func (p *Program) suppressedAt(fset *token.FileSet, pos token.Pos, name string) bool {
	position := fset.Position(pos)
	for _, d := range p.dirs[position.Filename] {
		if d.name == name && d.reason != "" && (d.line == position.Line || d.line == position.Line-1) {
			d.used = true
			return true
		}
	}
	return false
}

// funcKey is the cross-package-stable identity of a declared function:
// its full name (package path, receiver, name), normalized past generic
// instantiation. Object pointers cannot serve — every package is
// type-checked by its own importer, so the caller's and definer's views
// of one function are distinct *types.Func values.
func funcKey(fn *types.Func) string {
	return fn.Origin().FullName()
}

// FuncOf returns the call-graph node for a declared function or method,
// or nil if its body is outside the loaded program.
func (p *Program) FuncOf(obj *types.Func) *FuncNode { return p.funcs[funcKey(obj)] }

// LitOf returns the call-graph node for a function literal in a loaded
// file.
func (p *Program) LitOf(lit *ast.FuncLit) *FuncNode { return p.lits[lit] }

// FieldKey is the cross-package-stable identity of a struct field
// access x.f: "pkgpath.Type.field" derived from the base expression's
// named type. ok is false when the selector is not a named struct's
// field (anonymous structs, package selectors, methods).
func FieldKey(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	v, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return "", false
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return "", false
	}
	t := tv.Type
	for {
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Origin().Obj()
	pkgPath := ""
	if obj.Pkg() != nil {
		pkgPath = obj.Pkg().Path()
	}
	return pkgPath + "." + obj.Name() + "." + v.Name(), true
}

// AtomicFieldSite returns the first sync/atomic access site recorded
// for a field key, if any.
func (p *Program) AtomicFieldSite(key string) (token.Position, bool) {
	pos, ok := p.atomicFields[key]
	return pos, ok
}

// AtomicFields returns the fields accessed through sync/atomic anywhere
// in the program, keyed by FieldKey.
func (p *Program) AtomicFields() map[string]token.Position { return p.atomicFields }

// wallClockFuncs mirrors detrand's inventory of time functions that
// read or schedule on the real clock (duplicated here because detrand
// imports this package, not the reverse).
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// globalRandConstructors are the math/rand(/v2) package-level functions
// that build explicitly seeded local state rather than drawing from the
// hidden globals.
var globalRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// readMethods are the blocking-read method names charged as conn reads
// when invoked on a net.Conn.
var readMethods = map[string]bool{"Read": true, "ReadFrom": true, "ReadByte": true}

// ioReadFuncs are the io package functions that block reading their
// first argument.
var ioReadFuncs = map[string]bool{"ReadFull": true, "ReadAll": true, "ReadAtLeast": true, "Copy": true}

// deadlineMethods are the net.Conn deadline setters.
var deadlineMethods = map[string]bool{"SetDeadline": true, "SetReadDeadline": true, "SetWriteDeadline": true}

// buildProgram constructs the call graph and computes summaries bottom-
// up over Tarjan SCC order. dirs is the shared //lint: directive table;
// reasoned suppressions at a taint source stop taint from propagating
// (and are marked used, since stopping taint is doing suppression
// work).
func buildProgram(pkgs []*Package, dirs map[string][]*directive) *Program {
	p := &Program{
		funcs:        make(map[string]*FuncNode),
		lits:         make(map[*ast.FuncLit]*FuncNode),
		atomicFields: make(map[string]token.Position),
		dirs:         dirs,
	}

	// Index every declared function first, so call resolution during
	// the fact walk can see forward references.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &FuncNode{Obj: obj, Decl: fd, Pkg: pkg}
				p.funcs[funcKey(obj)] = n
				p.all = append(p.all, n)
			}
		}
	}
	for _, n := range p.all {
		if n.Decl != nil {
			p.walk(n, dirs)
		}
	}
	p.propagate()
	return p
}

// isNetConn reports whether t looks like a net.Conn or net.PacketConn:
// its method set carries the connection-defining methods. The check is
// structural by method name rather than types.Implements against a
// cached net.Conn — every package is type-checked by its own importer,
// so named types from two packages are never identical and an
// Implements check would only work within one package. The address
// method (RemoteAddr for stream conns, LocalAddr for packet conns) is
// what keeps os.File out: it has Read/ReadFrom/Close/SetReadDeadline
// but no addresses.
func (p *Program) isNetConn(t types.Type) bool {
	if t == nil {
		return false
	}
	return hasMethods(t, "Read", "Close", "RemoteAddr", "SetReadDeadline") ||
		hasMethods(t, "ReadFrom", "Close", "LocalAddr", "SetReadDeadline")
}

func hasMethods(t types.Type, names ...string) bool {
	for _, name := range names {
		obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
		if _, ok := obj.(*types.Func); !ok {
			return false
		}
	}
	return true
}

// CalleeOf resolves the declared function or method a call expression
// invokes, or nil for builtins, conversions, and dynamic calls.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// walk computes one declared function's direct facts and call edges,
// descending into its function literals (each literal gets its own node
// with its own facts; literal facts also fold into the enclosing
// declaration, since its code runs under the declaration's name).
func (p *Program) walk(root *FuncNode, dirs map[string][]*directive) {
	info := root.Pkg.TypesInfo
	fset := root.Pkg.Fset

	// suppressedTaint reports a reasoned suppression directive at pos
	// and marks it used: a vouched-for site does not taint callers.
	suppressedTaint := func(pos token.Pos, name string) bool {
		position := fset.Position(pos)
		for _, d := range dirs[position.Filename] {
			if d.name == name && d.reason != "" && (d.line == position.Line || d.line == position.Line-1) {
				d.used = true
				return true
			}
		}
		return false
	}

	// stack[0] is root; the top is the innermost function literal.
	var visit func(node *FuncNode, body ast.Node, stack []*FuncNode)
	visit = func(node *FuncNode, body ast.Node, stack []*FuncNode) {
		stack = append(stack, node)
		node.params = make(map[types.Object]bool)
		var ftype *ast.FuncType
		if node.Lit != nil {
			ftype = node.Lit.Type
		} else {
			ftype = node.Decl.Type
		}
		if ftype.Params != nil {
			for _, field := range ftype.Params.List {
				for _, name := range field.Names {
					if obj := info.Defs[name]; obj != nil {
						node.params[obj] = true
					}
				}
			}
		}
		record := func(f func(*FuncFacts)) {
			for _, n := range stack {
				f(&n.Facts)
			}
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				if n == body {
					return true
				}
				lit := &FuncNode{Lit: n, Pkg: node.Pkg}
				p.lits[n] = lit
				p.all = append(p.all, lit)
				visit(lit, n.Body, stack)
				return false
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					record(func(f *FuncFacts) { f.HasReceive = true })
				}
			case *ast.RangeStmt:
				if tv, ok := info.Types[n.X]; ok && tv.Type != nil {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						record(func(f *FuncFacts) { f.HasReceive = true })
					}
				}
			case *ast.ForStmt:
				if n.Cond == nil && !loopEscapes(n.Body) {
					record(func(f *FuncFacts) { f.HasUnboundedLoop = true })
				}
			case *ast.SelectorExpr:
				p.selectorFacts(node, n, record, suppressedTaint)
			case *ast.CallExpr:
				p.callFacts(stack, n, record)
			}
			return true
		})
	}
	visit(root, root.Decl.Body, nil)
}

// selectorFacts records package-qualified taint sources (time,
// math/rand, crypto/rand) at a selector expression.
func (p *Program) selectorFacts(node *FuncNode, sel *ast.SelectorExpr, record func(func(*FuncFacts)), suppressed func(token.Pos, string) bool) {
	info := node.Pkg.TypesInfo
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := info.Uses[ident].(*types.PkgName)
	if !ok {
		return
	}
	path := pkgName.Imported().Path()
	switch path {
	case "time":
		if wallClockFuncs[sel.Sel.Name] && !suppressed(sel.Pos(), "wallclock-ok") {
			record(func(f *FuncFacts) {
				if f.WallClock == token.NoPos {
					f.WallClock, f.WallClockDesc = sel.Pos(), "time."+sel.Sel.Name
				}
			})
		}
	case "math/rand", "math/rand/v2":
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok {
			return
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return
		}
		if !globalRandConstructors[fn.Name()] && !suppressed(sel.Pos(), "wallclock-ok") {
			record(func(f *FuncFacts) {
				if f.GlobalRand == token.NoPos {
					f.GlobalRand, f.GlobalRandDesc = sel.Pos(), path+"."+sel.Sel.Name
				}
			})
		}
	case "crypto/rand":
		if !suppressed(sel.Pos(), "wallclock-ok") {
			record(func(f *FuncFacts) {
				if f.CryptoRand == token.NoPos {
					f.CryptoRand, f.CryptoRandDesc = sel.Pos(), "crypto/rand."+sel.Sel.Name
				}
			})
		}
	}
}

// callFacts records call edges, atomic field collection, conn reads,
// deadline sets, and context.AfterFunc at a call expression. stack is
// the enclosing function chain; the innermost element owns the call.
func (p *Program) callFacts(stack []*FuncNode, call *ast.CallExpr, record func(func(*FuncFacts))) {
	node := stack[len(stack)-1]
	info := node.Pkg.TypesInfo
	callee := CalleeOf(info, call)
	if callee == nil {
		return
	}
	passesConn, passesReader := false, false
	for _, arg := range call.Args {
		if tv, ok := info.Types[arg]; ok && p.isNetConn(tv.Type) {
			passesConn = true
		}
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && node.params[obj] {
				if _, isIface := obj.Type().Underlying().(*types.Interface); isIface {
					passesReader = true
				}
			}
		}
	}
	if target := p.FuncOf(callee); target != nil {
		node.Calls = append(node.Calls, CallEdge{Callee: target, Pos: call.Pos(), PassesConn: passesConn, PassesReader: passesReader})
	}
	switch pkg := calleePkgPath(callee); {
	case pkg == "sync/atomic":
		p.collectAtomicFields(node, call)
	case pkg == "io" && ioReadFuncs[callee.Name()] && len(call.Args) > 0:
		// io.Copy reads its second argument; the others read their
		// first. Checking both ends covers every shape.
		p.recordReaderUse(stack, call.Args[len(call.Args)-1], record)
		p.recordReaderUse(stack, call.Args[0], record)
	case pkg == "context" && callee.Name() == "AfterFunc":
		record(func(f *FuncFacts) { f.HasAfterFunc = true })
	}
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		recvType := sig.Recv().Type()
		if readMethods[callee.Name()] && p.isNetConn(recvType) {
			record(func(f *FuncFacts) { f.ReadsConn = true })
		}
		if deadlineMethods[callee.Name()] {
			record(func(f *FuncFacts) { f.SetsDeadline = true })
		}
	}
}

// recordReaderUse classifies one reader-ish argument of a blocking read
// call: a net.Conn argument is a conn read; an argument that is some
// enclosing function's own io.Reader-like parameter marks that function
// as reading its reader parameter.
func (p *Program) recordReaderUse(stack []*FuncNode, arg ast.Expr, record func(func(*FuncFacts))) {
	node := stack[len(stack)-1]
	info := node.Pkg.TypesInfo
	if tv, ok := info.Types[arg]; ok && p.isNetConn(tv.Type) {
		record(func(f *FuncFacts) { f.ReadsConn = true })
		return
	}
	id, ok := ast.Unparen(arg).(*ast.Ident)
	if !ok {
		return
	}
	obj := info.Uses[id]
	if obj == nil {
		return
	}
	if _, isIface := obj.Type().Underlying().(*types.Interface); !isIface {
		return
	}
	for _, owner := range stack {
		if owner.params[obj] {
			owner.Facts.ReadsReader = true
		}
	}
}

// calleePkgPath is the import path of a function's defining package
// ("" for builtins and universe-scope functions).
func calleePkgPath(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// collectAtomicFields records struct fields whose address is passed to
// a sync/atomic function: those fields must be accessed atomically
// everywhere.
func (p *Program) collectAtomicFields(node *FuncNode, call *ast.CallExpr) {
	info := node.Pkg.TypesInfo
	for _, arg := range call.Args {
		unary, ok := ast.Unparen(arg).(*ast.UnaryExpr)
		if !ok || unary.Op != token.AND {
			continue
		}
		sel, ok := ast.Unparen(unary.X).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		key, ok := FieldKey(info, sel)
		if !ok {
			continue
		}
		if _, seen := p.atomicFields[key]; !seen {
			p.atomicFields[key] = node.Pkg.Fset.Position(arg.Pos())
		}
	}
}

// propagate folds callee facts into callers bottom-up over Tarjan SCC
// order (members of a cycle share their union).
func (p *Program) propagate() {
	index := 1
	var stack []*FuncNode
	var strongconnect func(n *FuncNode)
	strongconnect = func(n *FuncNode) {
		n.index, n.lowlink = index, index
		index++
		stack = append(stack, n)
		n.onStack = true
		for _, e := range n.Calls {
			c := e.Callee
			if c.index == 0 {
				strongconnect(c)
				if c.lowlink < n.lowlink {
					n.lowlink = c.lowlink
				}
			} else if c.onStack && c.index < n.lowlink {
				n.lowlink = c.index
			}
		}
		if n.lowlink == n.index {
			var scc []*FuncNode
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				m.onStack = false
				scc = append(scc, m)
				if m == n {
					break
				}
			}
			// Callees outside this SCC are fully summarized (Tarjan pops
			// components in reverse topological order); two merge rounds
			// reach a fixpoint within the component. Return facts run
			// here too, so they see summarized callees.
			for range 2 {
				for _, m := range scc {
					for _, e := range m.Calls {
						m.Facts.merge(&e.Callee.Facts, e.Callee, e)
					}
					p.returnFacts(m)
				}
			}
		}
	}
	for _, n := range p.all {
		if n.index == 0 {
			strongconnect(n)
		}
	}
}

// merge folds a callee's summary into f at a call site.
func (f *FuncFacts) merge(callee *FuncFacts, node *FuncNode, edge CallEdge) {
	if f.WallClock == token.NoPos && callee.WallClock != token.NoPos {
		f.WallClock = callee.WallClock
		f.WallClockDesc = callee.WallClockDesc + " via " + node.Name()
	}
	if f.GlobalRand == token.NoPos && callee.GlobalRand != token.NoPos {
		f.GlobalRand = callee.GlobalRand
		f.GlobalRandDesc = callee.GlobalRandDesc + " via " + node.Name()
	}
	if f.CryptoRand == token.NoPos && callee.CryptoRand != token.NoPos {
		f.CryptoRand = callee.CryptoRand
		f.CryptoRandDesc = callee.CryptoRandDesc + " via " + node.Name()
	}
	f.HasReceive = f.HasReceive || callee.HasReceive
	f.HasAfterFunc = f.HasAfterFunc || callee.HasAfterFunc
	f.SetsDeadline = f.SetsDeadline || callee.SetsDeadline
	f.HasUnboundedLoop = f.HasUnboundedLoop || callee.HasUnboundedLoop
	f.ReadsConn = f.ReadsConn || callee.ReadsConn || (callee.ReadsReader && edge.PassesConn)
	// Reader consumption chains through wrappers: a function handing its
	// own reader parameter to a reader-consuming callee consumes it too.
	f.ReadsReader = f.ReadsReader || (callee.ReadsReader && edge.PassesReader)
}

// loopEscapes reports whether a condition-less for body contains a
// return or break (outside nested function literals) — either gives the
// loop a structural way out, so it is not treated as unbounded. Breaks
// targeting an inner switch/select are counted too: that is permissive,
// but select-based loops carry a receive fact anyway.
func loopEscapes(body *ast.BlockStmt) bool {
	escapes := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			escapes = true
			return false
		case *ast.BranchStmt:
			if n.Tok == token.BREAK {
				escapes = true
				return false
			}
		}
		return !escapes
	})
	return escapes
}

// returnFacts computes the return-value facts of a function after its
// body walk: map-ordered returns (maporder's cross-function taint) and
// wire-decoded integer returns (wirebound's).
func (p *Program) returnFacts(node *FuncNode) {
	body := node.Body()
	if body == nil {
		return
	}
	info := node.Pkg.TypesInfo

	// orderedVars: locals appended to inside a map-range loop, minus
	// any later handed to a sort call. A range carrying a reasoned
	// //lint:maporder-ok does not taint: the author vouched the order
	// does not matter, so callers are not charged with it either.
	ordered := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !p.rangesMapOrdered(info, rng.X) {
			return true
		}
		if p.suppressedAt(node.Pkg.Fset, rng.Pos(), "maporder-ok") {
			return true
		}
		ast.Inspect(rng.Body, func(inner ast.Node) bool {
			assign, ok := inner.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range assign.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || i >= len(assign.Lhs) {
					continue
				}
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
					if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
						if target, ok := ast.Unparen(assign.Lhs[i]).(*ast.Ident); ok {
							if obj := info.ObjectOf(target); obj != nil {
								ordered[obj] = true
							}
						}
					}
				}
			}
			return true
		})
		return true
	})
	// Track maps.Keys/Collect assignments too: v := maps.Keys(m).
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range assign.Rhs {
			if i >= len(assign.Lhs) {
				break
			}
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && p.callReturnsMapOrder(info, call) {
				if target, ok := ast.Unparen(assign.Lhs[i]).(*ast.Ident); ok {
					if obj := info.ObjectOf(target); obj != nil {
						ordered[obj] = true
					}
				}
			}
		}
		return true
	})
	if len(ordered) > 0 {
		// A sorted ordered-var is deterministic after all.
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok {
					if pn, ok := info.Uses[id].(*types.PkgName); ok {
						switch pn.Imported().Path() {
						case "sort", "slices":
							for _, arg := range call.Args {
								if target, ok := ast.Unparen(arg).(*ast.Ident); ok {
									if obj := info.ObjectOf(target); obj != nil {
										delete(ordered, obj)
									}
								}
							}
						}
					}
				}
			}
			return true
		})
	}

	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // literal returns belong to the literal's node
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			res = ast.Unparen(res)
			if id, ok := res.(*ast.Ident); ok {
				if obj := info.ObjectOf(id); obj != nil && ordered[obj] {
					node.Facts.MapOrderedReturn = true
				}
			}
			if call, ok := res.(*ast.CallExpr); ok && p.callReturnsMapOrder(info, call) {
				node.Facts.MapOrderedReturn = true
			}
			// A returned function literal yielding out of a map range is
			// an iterator laundering map order (range-over-func).
			if lit, ok := res.(*ast.FuncLit); ok && litYieldsMapOrder(p, node.Pkg.Fset, info, lit) {
				node.Facts.MapOrderedReturn = true
			}
			if returnsWireInt(p, info, res) {
				node.Facts.ReturnsWireInt = true
			}
		}
		return true
	})
}

// litYieldsMapOrder reports a function literal containing a map-range
// loop that makes calls (the yield shape of a range-over-func
// iterator).
func litYieldsMapOrder(p *Program, fset *token.FileSet, info *types.Info, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !p.rangesMapOrdered(info, rng.X) {
			return true
		}
		if p.suppressedAt(fset, rng.Pos(), "maporder-ok") {
			return true
		}
		ast.Inspect(rng.Body, func(inner ast.Node) bool {
			if _, ok := inner.(*ast.CallExpr); ok {
				found = true
				return false
			}
			return true
		})
		return !found
	})
	return found
}

// rangesMapOrdered reports whether ranging over e visits elements in
// map-iteration order: e is a map, or a call returning map-derived
// order.
func (p *Program) rangesMapOrdered(info *types.Info, e ast.Expr) bool {
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			return true
		}
	}
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		return p.callReturnsMapOrder(info, call)
	}
	return false
}

// callReturnsMapOrder reports whether a call's result order derives
// from map iteration: maps.Keys/Values/All, slices.Collect of such, or
// a program function summarized MapOrderedReturn.
func (p *Program) callReturnsMapOrder(info *types.Info, call *ast.CallExpr) bool {
	callee := CalleeOf(info, call)
	if callee == nil {
		return false
	}
	switch calleePkgPath(callee) {
	case "maps":
		switch callee.Name() {
		case "Keys", "Values", "All":
			return true
		}
	case "slices":
		if callee.Name() == "Collect" && len(call.Args) == 1 {
			if inner, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr); ok {
				return p.callReturnsMapOrder(info, inner)
			}
		}
	}
	if n := p.FuncOf(callee); n != nil {
		return n.Facts.MapOrderedReturn
	}
	return false
}

// MapOrderedSource reports whether ranging over e in the context of
// info visits elements in map-iteration order, with a description of
// the source for diagnostics.
func (p *Program) MapOrderedSource(info *types.Info, e ast.Expr) (string, bool) {
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			return "map", true
		}
	}
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	callee := CalleeOf(info, call)
	if callee == nil {
		return "", false
	}
	if !p.callReturnsMapOrder(info, call) {
		return "", false
	}
	if pkg := calleePkgPath(callee); pkg == "maps" || pkg == "slices" {
		return pkg + "." + callee.Name(), true
	}
	return callee.FullName(), true
}

// returnsWireInt reports whether e is an integer-typed expression
// decoded from raw bytes: binary.XxxEndian.UintNN, indexing a byte
// slice, or calling a decoder summarized ReturnsWireInt.
func returnsWireInt(p *Program, info *types.Info, e ast.Expr) bool {
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		if basic, ok := tv.Type.Underlying().(*types.Basic); !ok || basic.Info()&types.IsInteger == 0 {
			return false
		}
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if IsWireDecodeCall(p, info, n) {
				found = true
				return false
			}
		case *ast.IndexExpr:
			if tv, ok := info.Types[n.X]; ok && isByteSlice(tv.Type) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// IsWireDecodeCall reports whether call decodes an integer from raw
// bytes: a binary.XxxEndian.UintNN method, binary.ReadUvarint/
// ReadVarint, or a program function summarized ReturnsWireInt.
func IsWireDecodeCall(p *Program, info *types.Info, call *ast.CallExpr) bool {
	callee := CalleeOf(info, call)
	if callee == nil {
		return false
	}
	if calleePkgPath(callee) == "encoding/binary" {
		switch callee.Name() {
		case "Uint16", "Uint32", "Uint64", "ReadUvarint", "ReadVarint", "Varint", "Uvarint":
			return true
		}
	}
	if n := p.FuncOf(callee); n != nil {
		return n.Facts.ReturnsWireInt
	}
	return false
}

func isByteSlice(t types.Type) bool {
	var elem types.Type
	switch u := t.Underlying().(type) {
	case *types.Slice:
		elem = u.Elem()
	case *types.Array:
		elem = u.Elem()
	default:
		return false
	}
	basic, ok := elem.Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Uint8
}
