package goroexit_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/goroexit"
)

// TestFindings checks that goroutines without a bounded exit path and
// deadline-less conn readers are flagged — including through method
// extraction — while selects on shutdown channels, deadline-bearing
// reads, AfterFunc closers, bounded worker bodies, and reasoned
// suppressions pass.
func TestFindings(t *testing.T) {
	analysistest.Run(t, "testdata/src/conc", "repro/node", goroexit.Analyzer)
}
