package obs

// GossipMetrics binds the gossip-search metric names in a registry and
// hands the engine pre-resolved instruments, mirroring SimMetrics for
// the GUESS engine. All counters cover the whole run (the gossip engine
// has no warmup window), so a metrics snapshot and the returned
// gossip.Results agree. Several engines may share one GossipMetrics:
// every instrument is atomic, and the counters then aggregate across
// runs.
//
// See README.md, "Observability", for the metric name table.
type GossipMetrics struct {
	Queries     *Counter
	Satisfied   *Counter
	Unsatisfied *Counter

	Messages  *Counter
	Delivered *Counter
	Dropped   *Counter

	Rounds *Counter

	// QueryRounds and QueryMessages are per-completed-query
	// distributions (rounds used; gossip messages sent).
	QueryRounds   *Histogram
	QueryMessages *Histogram
}

// Default histogram buckets: round counts stay small (round budgets are
// tens, not thousands); per-query message counts are log-spaced like
// probe counts.
var (
	GossipRoundBuckets   = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}
	GossipMessageBuckets = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000}
)

// NewGossipMetrics registers the gossip metric set in reg. A nil
// registry yields nil, which the engine treats as metrics-off.
func NewGossipMetrics(reg *Registry) *GossipMetrics {
	if reg == nil {
		return nil
	}
	return &GossipMetrics{
		Queries:     reg.Counter("guess_gossip_queries_total", "Completed gossip queries."),
		Satisfied:   reg.Counter("guess_gossip_queries_satisfied_total", "Gossip queries that reached NumDesiredResults."),
		Unsatisfied: reg.Counter("guess_gossip_queries_unsatisfied_total", "Gossip queries that ended below NumDesiredResults."),

		Messages:  reg.Counter("guess_gossip_messages_total", "Gossip messages sent (rumor pushes, pull requests, and responses)."),
		Delivered: reg.Counter("guess_gossip_messages_delivered_total", "Gossip messages delivered to live peers."),
		Dropped:   reg.Counter("guess_gossip_messages_dropped_total", "Gossip messages lost in transit or sent to dead peers."),

		Rounds: reg.Counter("guess_gossip_rounds_total", "Gossip rounds executed across all queries."),

		QueryRounds:   reg.Histogram("guess_gossip_query_rounds", "Rounds used per completed gossip query.", GossipRoundBuckets),
		QueryMessages: reg.Histogram("guess_gossip_query_messages", "Messages sent per completed gossip query.", GossipMessageBuckets),
	}
}
