package node

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/node/memnet"
)

// TestConcurrentQueries runs several queries from the same node in
// parallel while pings are active — the node must be race-free and
// every query must complete.
func TestConcurrentQueries(t *testing.T) {
	nw := memnet.New(11)
	var sharers []*Node
	for i := 0; i < 6; i++ {
		s := startMemNode(t, nw, Config{
			Files: []string{fmt.Sprintf("file-%d.dat", i), "shared hit.mp3"},
			Seed:  uint64(i + 2),
		})
		sharers = append(sharers, s)
	}
	querier := startMemNode(t, nw, Config{
		PingInterval: 20 * time.Millisecond,
		Seed:         1,
	})
	for _, s := range sharers {
		querier.AddPeer(s.Addr(), 2)
	}

	const queries = 8
	var wg sync.WaitGroup
	errs := make([]error, queries)
	found := make([]int, queries)
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			hits, _, err := querier.Query(context.Background(), "shared hit", 1)
			errs[i] = err
			found[i] = len(hits)
		}(i)
	}
	wg.Wait()
	for i := 0; i < queries; i++ {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		if found[i] == 0 {
			t.Fatalf("query %d found nothing", i)
		}
	}
}

// TestCloseDuringQuery: closing the node while queries run must not
// hang or panic; queries return what they have.
func TestCloseDuringQuery(t *testing.T) {
	nw := memnet.New(3)
	querier := startMemNode(t, nw, Config{ProbeTimeout: 50 * time.Millisecond})
	// Only dead peers: the query would walk all of them.
	for i := 0; i < 20; i++ {
		dead := nw.Listen()
		addr := addrPortOf(dead.LocalAddr())
		dead.Close()
		querier.AddPeer(addr, 1)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, _ = querier.Query(context.Background(), "anything", 1)
	}()
	time.Sleep(60 * time.Millisecond)
	querier.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("query did not return after Close")
	}
}

// TestContextCancelStopsQuery: cancellation ends the probe walk
// promptly.
func TestContextCancelStopsQuery(t *testing.T) {
	nw := memnet.New(5)
	querier := startMemNode(t, nw, Config{ProbeTimeout: 100 * time.Millisecond})
	for i := 0; i < 50; i++ {
		dead := nw.Listen()
		addr := addrPortOf(dead.LocalAddr())
		dead.Close()
		querier.AddPeer(addr, 1)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, stats, err := querier.Query(ctx, "anything", 1)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancelled query ran %v (stats %+v)", elapsed, stats)
	}
	if stats.Probes >= 50 {
		t.Fatal("cancellation did not stop the walk early")
	}
}
