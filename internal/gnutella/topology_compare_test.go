package gnutella

import (
	"testing"

	"repro/internal/simrng"
	"repro/internal/stats"
)

// TestPowerLawMoreUnequalThanRandom: the degree distribution of a
// preferential-attachment overlay must be markedly more concentrated
// than a same-density random overlay — the property behind the paper's
// fragmentation-attack discussion (Section 3.3).
func TestPowerLawMoreUnequalThanRandom(t *testing.T) {
	const n = 600
	pl, err := NewPowerLaw(simrng.New(1), n, 3)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := NewRandom(simrng.New(1), n, 6)
	if err != nil {
		t.Fatal(err)
	}
	gini := func(topo *Topology) float64 {
		d := make([]float64, topo.NumNodes())
		for v := range d {
			d[v] = float64(topo.Degree(v))
		}
		return stats.Gini(d)
	}
	gPL, gRnd := gini(pl), gini(rnd)
	if gPL <= gRnd+0.1 {
		t.Fatalf("power-law degree Gini %.2f not clearly above random %.2f", gPL, gRnd)
	}
}

// TestHubRemovalFragmentsPowerLaw: removing the top-degree hubs from a
// power-law overlay must shrink flood reach far more than removing the
// same number of random nodes — the fragmentation attack itself.
func TestHubRemovalFragmentsPowerLaw(t *testing.T) {
	const n = 600
	r := simrng.New(2)
	topo, err := NewPowerLaw(r, n, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Identify the top 5% hubs.
	type nd struct{ v, deg int }
	all := make([]nd, n)
	for v := 0; v < n; v++ {
		all[v] = nd{v, topo.Degree(v)}
	}
	// Selection sort of the top k, k is small.
	k := n / 20
	removedHubs := make(map[int]bool, k)
	for i := 0; i < k; i++ {
		best := -1
		for v := 0; v < n; v++ {
			if removedHubs[all[v].v] {
				continue
			}
			if best == -1 || all[v].deg > all[best].deg {
				best = v
			}
		}
		removedHubs[all[best].v] = true
	}
	removedRandom := make(map[int]bool, k)
	for len(removedRandom) < k {
		v := r.Intn(n)
		if !removedHubs[v] { // keep sets comparable but disjoint enough
			removedRandom[v] = true
		}
	}

	reach := func(removed map[int]bool) int {
		// BFS over the full graph skipping removed nodes, from an
		// arbitrary surviving node.
		start := -1
		for v := 0; v < n; v++ {
			if !removed[v] {
				start = v
				break
			}
		}
		seen := make([]bool, n)
		seen[start] = true
		queue := []int{start}
		count := 1
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range topo.Neighbors(v) {
				if removed[w] || seen[w] {
					continue
				}
				seen[w] = true
				count++
				queue = append(queue, w)
			}
		}
		return count
	}
	hubReach := reach(removedHubs)
	randReach := reach(removedRandom)
	if hubReach >= randReach {
		t.Fatalf("hub removal (%d reachable) not worse than random removal (%d)", hubReach, randReach)
	}
}
