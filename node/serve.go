package node

import (
	"net/netip"
	"time"

	"repro/internal/cache"
	"repro/internal/policy"
	"repro/internal/wire"
)

// serveLoop reads datagrams and dispatches until the socket closes.
func (n *Node) serveLoop() {
	defer n.wg.Done()
	buf := make([]byte, wire.MaxPacket)
	for {
		count, from, err := n.conn.ReadFrom(buf)
		if err != nil {
			select {
			case <-n.closed:
				return
			default:
			}
			// Transient errors (e.g. ICMP port unreachable surfaced on
			// some platforms) should not kill the node.
			n.logf("read error: %v", err)
			continue
		}
		n.lastInbound.Store(time.Now().UnixNano())
		msg, err := wire.Decode(buf[:count])
		if err != nil {
			n.met.MalformedDropped.Inc()
			continue
		}
		n.dispatch(msg, addrPortOf(from))
	}
}

// dispatch handles one inbound message. While draining, new probes are
// refused with Busy (so requesters fail over fast) but replies still
// flow to any probe served before the drain began.
func (n *Node) dispatch(msg wire.Message, from netip.AddrPort) {
	switch m := msg.(type) {
	case *wire.Ping:
		n.met.PingsReceived.Inc()
		if n.Draining() {
			n.shed(shedDrain, m.MsgID, from)
			return
		}
		n.handlePing(m, from)
	case *wire.Query:
		if n.Draining() {
			n.shed(shedDrain, m.MsgID, from)
			return
		}
		n.handleQuery(m, from)
	case *wire.Pong, *wire.QueryHit, *wire.Busy:
		n.deliver(msg)
	}
}

// shed refuses a probe with Busy, accounting the refusal by tier.
// Flat-window refusals (shedFlat) count only in ProbesRefused,
// preserving the original counter semantics.
func (n *Node) shed(tier shedTier, msgID uint64, from netip.AddrPort) {
	n.met.ProbesRefused.Inc()
	switch tier {
	case shedPing:
		n.met.ShedPings.Inc()
	case shedQuery:
		n.met.ShedQueries.Inc()
	case shedDrain:
		n.met.ShedDrain.Inc()
	}
	if err := n.send(&wire.Busy{MsgID: msgID}, from); err != nil {
		n.logf("busy to %v: %v", from, err)
	}
}

// handlePing applies admission and introduction and replies with a
// pong. Only the fair controller ever sheds pings (tier 1, under
// pressure); the flat default admits every ping, as the paper does.
func (n *Node) handlePing(m *wire.Ping, from netip.AddrPort) {
	n.mu.Lock()
	v := n.adm.admit(requesterKey(from, n.keySalt), probePing, time.Now())
	if !v.ok {
		n.mu.Unlock()
		n.shed(v.tier, m.MsgID, from)
		return
	}
	if v.skipCacheWrite {
		n.met.CacheWriteSkips.Inc()
	} else {
		n.introduce(from, m.NumFiles)
	}
	entries := n.pongEntries(n.cfg.PingPong, from)
	n.mu.Unlock()
	if err := n.send(&wire.Pong{MsgID: m.MsgID, Entries: entries}, from); err != nil {
		n.logf("pong to %v: %v", from, err)
	}
}

// handleQuery applies admission, matches shared files and replies with
// a QueryHit carrying the piggy-backed pong — or Busy when the
// admission controller sheds the probe.
func (n *Node) handleQuery(m *wire.Query, from netip.AddrPort) {
	n.mu.Lock()
	v := n.adm.admit(requesterKey(from, n.keySalt), probeQuery, time.Now())
	if !v.ok {
		n.mu.Unlock()
		n.shed(v.tier, m.MsgID, from)
		return
	}
	if v.skipCacheWrite {
		n.met.CacheWriteSkips.Inc()
	} else {
		n.introduce(from, m.NumFiles)
	}
	entries := n.pongEntries(n.cfg.QueryPong, from)
	n.mu.Unlock()
	n.met.QueriesServed.Inc()

	var results []string
	for _, name := range n.cfg.Files {
		if matches(name, m.Keyword) {
			results = append(results, name)
			if len(results) >= wire.MaxHits || len(results) >= int(m.Desired) {
				break
			}
		}
	}
	hit := &wire.QueryHit{MsgID: m.MsgID, Results: results, Pong: entries}
	if err := n.send(hit, from); err != nil {
		n.logf("queryhit to %v: %v", from, err)
	}
}

// introduce applies the introduction protocol for an interaction
// initiated by from; callers hold n.mu.
func (n *Node) introduce(from netip.AddrPort, numFiles uint32) {
	if from == n.Addr() {
		return
	}
	id := n.idFor(from)
	n.link.Touch(id, n.now())
	if !n.rng.Bool(n.cfg.IntroProb) {
		return
	}
	n.insertLocked(cache.Entry{
		Addr:     id,
		TS:       n.now(),
		NumFiles: int32(clampFiles(numFiles)),
		Direct:   true,
	})
	n.syncCacheGauge()
}

// pongEntries builds a pong under the given policy, excluding the
// recipient's own address; callers hold n.mu.
func (n *Node) pongEntries(sel policy.Selection, recipient netip.AddrPort) []wire.PongEntry {
	entries := n.link.Entries()
	idx := policy.PickN(n.rng, sel, entries, n.cfg.PongSize+1)
	out := make([]wire.PongEntry, 0, n.cfg.PongSize)
	for _, i := range idx {
		e := entries[i]
		addr := n.addrs[e.Addr]
		if addr == recipient || !addr.IsValid() {
			continue
		}
		numRes := e.NumRes
		if numRes < 0 {
			numRes = 0
		}
		out = append(out, wire.PongEntry{
			Addr:     addr,
			NumFiles: uint32(e.NumFiles),
			NumRes:   uint16(min(int(numRes), 1<<16-1)),
		})
		if len(out) == n.cfg.PongSize {
			break
		}
	}
	return out
}

// deliver routes a response to the waiting request, if any. Replies
// without a pending probe (timed out, completed, or never solicited)
// and redundant copies from duplicating networks are counted and
// dropped so chaos tests can account for every packet.
func (n *Node) deliver(msg wire.Message) {
	n.pendingMu.Lock()
	ch, ok := n.pending[msg.ID()]
	n.pendingMu.Unlock()
	if !ok {
		n.met.LateReplies.Inc()
		return
	}
	select {
	case ch <- msg:
	default:
		n.met.DupReplies.Inc()
	}
}

// await registers interest in replies to msgID. The caller must call
// the returned cancel function.
func (n *Node) await(msgID uint64) (<-chan wire.Message, func()) {
	ch := make(chan wire.Message, 1)
	n.pendingMu.Lock()
	n.pending[msgID] = ch
	n.pendingMu.Unlock()
	return ch, func() {
		n.pendingMu.Lock()
		delete(n.pending, msgID)
		n.pendingMu.Unlock()
	}
}
