// Package obs is the reproduction's observability layer: a lightweight
// metrics registry (counters, gauges, fixed-bucket histograms) and a
// per-query trace-event API shared by the simulator (internal/core),
// the experiment harness (internal/experiments), and the live node
// (node, node/memnet).
//
// Design constraints, in order:
//
//   - Free when off. Every instrument is nil-receiver safe: a nil
//     *Counter, *Gauge, *Histogram, or *Registry absorbs updates as a
//     single predictable branch, so instrumented hot paths cost nothing
//     measurable when no registry is attached (BenchmarkSingleRun
//     guards this).
//   - Allocation-free when on. Updates are atomic operations on
//     pre-registered instruments; no update path allocates, takes a
//     lock, or formats a string.
//   - Deterministic exposition. WritePrometheus and Snapshot emit
//     metrics in sorted name order with fixed number formatting, so
//     fixed-seed runs produce byte-identical output (the golden-file
//     tests rely on this).
//
// Metrics never perturb what they measure: no instrument consumes
// randomness or changes control flow, so enabling a registry leaves a
// seeded simulation byte-identical (TestObservabilityDoesNotPerturbRun).
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The value is a uint64
// and wraps on overflow (adding to a counter at math.MaxUint64 rolls
// over to zero) — at one increment per nanosecond that is five
// centuries away, so saturation logic is not worth a hot-path branch;
// TestCounterOverflowWraps pins the behavior.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one. Safe on a nil receiver (no-op).
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds delta. Safe on a nil receiver (no-op).
func (c *Counter) Add(delta uint64) {
	if c != nil {
		c.v.Add(delta)
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down (stored as float64 bits).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. Safe on a nil receiver (no-op).
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta with a CAS loop. Safe on a nil receiver (no-op).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram with Prometheus "le" (less or
// equal) semantics: an observation lands in the first bucket whose
// upper bound is >= the value, and values above every bound land in the
// implicit +Inf bucket. Buckets are fixed at registration so Observe is
// a bounded scan plus one atomic add — no allocation, no lock.
type Histogram struct {
	upper  []float64       // sorted upper bounds; +Inf bucket is implicit
	counts []atomic.Uint64 // len(upper)+1; counts[len(upper)] is +Inf
	sum    Gauge           // total of observed values
}

// Observe records v. Safe on a nil receiver (no-op).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the total of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// kind tags a registered instrument.
type kind uint8

const (
	kindCounter kind = iota + 1
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// instrument is one registered metric.
type instrument struct {
	name string
	help string
	kind kind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry holds named instruments. Registration (Counter, Gauge,
// Histogram) takes a lock and is idempotent per name; the returned
// instruments are updated lock-free. A nil *Registry is a valid "off"
// registry: every registration returns nil, and nil instruments absorb
// updates.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]*instrument
	ordered []*instrument // insertion order; exposition sorts by name
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*instrument)}
}

// Counter registers (or returns the existing) counter with the given
// name. Panics if the name is invalid or already registered as a
// different kind. Returns nil on a nil registry.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	ins := r.register(name, help, kindCounter)
	if ins.c == nil {
		ins.c = &Counter{}
	}
	return ins.c
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	ins := r.register(name, help, kindGauge)
	if ins.g == nil {
		ins.g = &Gauge{}
	}
	return ins.g
}

// Histogram registers (or returns the existing) histogram with the
// given bucket upper bounds (must be sorted ascending, non-empty, and
// finite; the +Inf bucket is implicit). Re-registering an existing
// histogram ignores the new buckets and returns the original.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	ins := r.register(name, help, kindHistogram)
	if ins.h == nil {
		if len(buckets) == 0 {
			panic(fmt.Sprintf("obs: histogram %q needs at least one bucket", name))
		}
		for i, b := range buckets {
			if math.IsNaN(b) || math.IsInf(b, 0) {
				panic(fmt.Sprintf("obs: histogram %q bucket %v is not finite", name, b))
			}
			if i > 0 && b <= buckets[i-1] {
				panic(fmt.Sprintf("obs: histogram %q buckets not strictly ascending at %v", name, b))
			}
		}
		ins.h = &Histogram{
			upper:  append([]float64(nil), buckets...),
			counts: make([]atomic.Uint64, len(buckets)+1),
		}
	}
	return ins.h
}

// register finds or creates the named instrument; callers hold no lock.
func (r *Registry) register(name, help string, k kind) *instrument {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if ins, ok := r.byName[name]; ok {
		if ins.kind != k {
			panic(fmt.Sprintf("obs: metric %q already registered as %s, requested %s",
				name, ins.kind, k))
		}
		return ins
	}
	ins := &instrument{name: name, help: help, kind: k}
	r.byName[name] = ins
	r.ordered = append(r.ordered, ins)
	return ins
}

// sorted returns the instruments in name order (a copy; callers need
// no lock to iterate).
func (r *Registry) sorted() []*instrument {
	r.mu.Lock()
	out := append([]*instrument(nil), r.ordered...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// validName checks the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
