package eventq

import (
	"fmt"
	"testing"
)

// BenchmarkPushPopSteady measures the steady-state cost of the
// simulator's event scheduling: a warm queue holding churn/ping/probe
// events while pushes and pops interleave. After warmup the heap's
// backing array is at capacity, so the loop should be allocation-free.
func BenchmarkPushPopSteady(b *testing.B) {
	var q Queue[int]
	const depth = 1 << 12
	for i := 0; i < depth; i++ {
		q.Push(float64(i%977), i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, v, ok := q.Pop()
		if !ok {
			b.Fatal("queue drained")
		}
		q.Push(t+float64(v%31)+1, v)
	}
}

// BenchmarkQueueReset measures recycling a queue across simulated
// runs: fill, drain, Reset, repeat. After the first iteration the
// backing array is at its high-water mark, so the steady state must be
// allocation-free — this is the contract that lets engines reuse one
// queue across runs instead of reallocating it.
func BenchmarkQueueReset(b *testing.B) {
	var q Queue[int]
	const batch = 1024
	fill := func() {
		for j := 0; j < batch; j++ {
			q.Push(float64((j*2654435761)%4093), j)
		}
		for q.Len() > 0 {
			q.Pop()
		}
	}
	fill() // reach the high-water mark before measuring
	q.Reset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fill()
		q.Reset()
	}
}

// BenchmarkShardedPushPopSteady is BenchmarkPushPopSteady over the
// sharded queue: same workload, events routed across shards, pops
// merged at the heads. Compares the per-event cost of the K-way merge
// plus smaller heaps against the single heap.
func BenchmarkShardedPushPopSteady(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			s := NewSharded[int](shards)
			const depth = 1 << 12
			for i := 0; i < depth; i++ {
				s.Push(i%shards, float64(i%977), i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t, v, ok := s.Pop()
				if !ok {
					b.Fatal("queue drained")
				}
				s.Push(v%shards, t+float64(v%31)+1, v)
			}
		})
	}
}

// BenchmarkCalendarPushPopSteady is the same steady-state workload on
// the calendar queue — the head-to-head its docs promise against the
// binary heap (BenchmarkPushPopSteady). The workload's wide spread of
// event horizons (t+1 .. t+31 over a warm queue of 4096) is the
// simulator's, and is unflattering to the calendar; see the package
// docs for why the engine keeps the heap.
func BenchmarkCalendarPushPopSteady(b *testing.B) {
	c := NewCalendar[int]()
	const depth = 1 << 12
	for i := 0; i < depth; i++ {
		c.Push(float64(i%977), i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, v, ok := c.Pop()
		if !ok {
			b.Fatal("queue drained")
		}
		c.Push(t+float64(v%31)+1, v)
	}
}

// BenchmarkPushDrain measures bulk scheduling followed by a full drain
// (the shape of engine startup and shutdown).
func BenchmarkPushDrain(b *testing.B) {
	var q Queue[int]
	const batch = 1024
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := 0; j < batch; j++ {
			q.Push(float64((j*2654435761)%4093), j)
		}
		for q.Len() > 0 {
			q.Pop()
		}
	}
}
