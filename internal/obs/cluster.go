package obs

// Cluster metric sets: the sync-client side (guess_node_cluster_*,
// one set per node participating in cluster shed-state sync) and the
// shed-state service side (guess_cluster_*). As with NodeMetrics, a
// nil registry is replaced with a private one so the instruments are
// always usable.
//
// See README.md, "Observability", for the metric name tables.

// ClusterMetrics instruments one node's shed-state sync client.
type ClusterMetrics struct {
	// Sync-loop outcomes: one sync is one push+pull round trip.
	Syncs      *Counter
	SyncErrors *Counter

	// Fallback transitions and reconnects: Fallbacks counts entries
	// into local-only shedding; Reconnects counts recoveries back to
	// the cluster view.
	Fallbacks  *Counter
	Reconnects *Counter

	// Salt-epoch handling: rotations adopted from the service, and
	// aggregates rejected for carrying an epoch older than ours.
	EpochRotations *Counter
	StaleEpochs    *Counter

	// Fallback is 1 while the node sheds on local state only;
	// LastPullUnix is the unix time of the last installed aggregate;
	// SaltEpoch is the epoch the node currently hashes under.
	Fallback     *Gauge
	LastPullUnix *Gauge
	SaltEpoch    *Gauge
}

// NewClusterMetrics registers the sync-client metric set in reg.
func NewClusterMetrics(reg *Registry) *ClusterMetrics {
	if reg == nil {
		reg = NewRegistry()
	}
	return &ClusterMetrics{
		Syncs:      reg.Counter("guess_node_cluster_syncs_total", "Completed shed-state sync rounds (push+pull)."),
		SyncErrors: reg.Counter("guess_node_cluster_sync_errors_total", "Sync rounds failed (dial, deadline, or decode errors)."),

		Fallbacks:  reg.Counter("guess_node_cluster_fallbacks_total", "Transitions into local-only shedding."),
		Reconnects: reg.Counter("guess_node_cluster_reconnects_total", "Recoveries from fallback to the cluster view."),

		EpochRotations: reg.Counter("guess_node_cluster_epoch_rotations_total", "Salt epochs adopted from the service."),
		StaleEpochs:    reg.Counter("guess_node_cluster_stale_epochs_total", "Aggregates rejected for a stale salt epoch."),

		Fallback:     reg.Gauge("guess_node_cluster_fallback", "1 while shedding on local state only."),
		LastPullUnix: reg.Gauge("guess_node_cluster_last_pull_unixtime", "Unix time of the last installed aggregate."),
		SaltEpoch:    reg.Gauge("guess_node_cluster_salt_epoch", "Salt epoch the node currently hashes under."),
	}
}

// ServiceMetrics instruments the shed-state service.
type ServiceMetrics struct {
	// Push accounting: applied, deduplicated (replayed seq after a
	// lost ack), and rejected (stale or unknown epoch) pushes.
	Pushes          *Counter
	DuplicatePushes *Counter
	RejectedPushes  *Counter

	// SaltRotations counts epoch rotations the service initiated.
	SaltRotations *Counter

	// Snapshot (crash-recovery) accounting, mirroring the node's
	// snapshot counters.
	SnapshotWrites   *Counter
	SnapshotErrors   *Counter
	SnapshotRejected *Counter

	// NodesConnected tracks live sync connections; SaltEpoch is the
	// epoch the service currently serves; Warming is 1 while the
	// aggregate is too young to trust (after a cold start or
	// rotation).
	NodesConnected *Gauge
	SaltEpoch      *Gauge
	Warming        *Gauge
}

// NewServiceMetrics registers the shed-state-service metric set in reg.
func NewServiceMetrics(reg *Registry) *ServiceMetrics {
	if reg == nil {
		reg = NewRegistry()
	}
	return &ServiceMetrics{
		Pushes:          reg.Counter("guess_cluster_pushes_total", "Delta pushes applied to the aggregate."),
		DuplicatePushes: reg.Counter("guess_cluster_duplicate_pushes_total", "Replayed pushes acknowledged but not re-applied."),
		RejectedPushes:  reg.Counter("guess_cluster_rejected_pushes_total", "Pushes rejected for an epoch mismatch."),

		SaltRotations: reg.Counter("guess_cluster_salt_rotations_total", "Salt epoch rotations initiated by the service."),

		SnapshotWrites:   reg.Counter("guess_cluster_snapshot_writes_total", "Aggregate snapshots written."),
		SnapshotErrors:   reg.Counter("guess_cluster_snapshot_errors_total", "Aggregate snapshot write failures."),
		SnapshotRejected: reg.Counter("guess_cluster_snapshot_rejected_total", "Startup snapshots rejected as corrupt."),

		NodesConnected: reg.Gauge("guess_cluster_nodes_connected", "Live shed-state sync connections."),
		SaltEpoch:      reg.Gauge("guess_cluster_salt_epoch", "Salt epoch the service currently serves."),
		Warming:        reg.Gauge("guess_cluster_warming", "1 while the aggregate is too young to trust."),
	}
}
