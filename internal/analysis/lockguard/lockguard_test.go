package lockguard_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockguard"
)

// TestFindings checks that lock-free accesses to majority-locked
// fields are flagged — including from closures — while constructors,
// xxxLocked helpers, early-unlock error branches, channel fields, and
// reasoned suppressions pass.
func TestFindings(t *testing.T) {
	analysistest.Run(t, "testdata/src/conc", "repro/node", lockguard.Analyzer)
}
