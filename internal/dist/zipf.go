package dist

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/simrng"
)

// Zipf draws ranks from a bounded Zipf (zeta) distribution over
// {0, 1, ..., N-1}: P(rank k) proportional to 1/(k+1)^S.
//
// It precomputes the cumulative mass function, so Rank is an O(log N)
// binary search. This is the popularity law behind the content model:
// item popularity in file-sharing networks is well approximated by a
// Zipf distribution.
type Zipf struct {
	s   float64
	cum []float64
}

// NewZipf builds a bounded Zipf distribution over n ranks with exponent
// s >= 0. s == 0 degenerates to the uniform distribution.
func NewZipf(n int, s float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dist: Zipf needs n > 0, got %d", n)
	}
	if s < 0 || math.IsNaN(s) {
		return nil, fmt.Errorf("dist: Zipf exponent must be >= 0, got %v", s)
	}
	cum := make([]float64, n)
	acc := 0.0
	for k := 0; k < n; k++ {
		acc += math.Pow(float64(k+1), -s)
		cum[k] = acc
	}
	inv := 1 / acc
	for k := range cum {
		cum[k] *= inv
	}
	cum[n-1] = 1
	return &Zipf{s: s, cum: cum}, nil
}

// MustZipf is NewZipf but panics on invalid arguments.
func MustZipf(n int, s float64) *Zipf {
	z, err := NewZipf(n, s)
	if err != nil {
		panic(err)
	}
	return z
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cum) }

// Rank draws a rank in [0, N).
func (z *Zipf) Rank(r *simrng.RNG) int {
	u := r.Float64()
	return sort.SearchFloat64s(z.cum, u)
}

// Prob returns the probability mass of rank k.
func (z *Zipf) Prob(k int) float64 {
	if k < 0 || k >= len(z.cum) {
		return 0
	}
	if k == 0 {
		return z.cum[0]
	}
	return z.cum[k] - z.cum[k-1]
}

// CDF returns the cumulative probability of ranks <= k.
func (z *Zipf) CDF(k int) float64 {
	if k < 0 {
		return 0
	}
	if k >= len(z.cum) {
		return 1
	}
	return z.cum[k]
}

// Sample implements Sampler by returning the drawn rank as a float64.
func (z *Zipf) Sample(r *simrng.RNG) float64 { return float64(z.Rank(r)) }

// Mean returns the expected rank.
func (z *Zipf) Mean() float64 {
	mean := 0.0
	for k := range z.cum {
		mean += float64(k) * z.Prob(k)
	}
	return mean
}

var _ Sampler = (*Zipf)(nil)
