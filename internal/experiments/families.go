package experiments

// The four-family comparison puts GUESS, Gnutella flooding, gossip
// search, and the DHT baseline side by side over the same content
// model, seed, and (where the family models it) churn level, reporting
// the paper's three axes: satisfaction, messages per query, and load
// fairness. Flooding runs over a static overlay (its best case — it
// has no notion of dead peers); GUESS uses its full churn model, and
// gossip/DHT use the static DeadFraction stand-in at the same 10%
// level. Message semantics are per-family (probes, flood forwards,
// rumor pushes/pulls, routing hops) — the comparison mirrors the
// paper's cost-per-query framing, not a wire-identical protocol.

import (
	"fmt"

	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/gnutella"
	"repro/internal/gossip"
	"repro/internal/report"
	"repro/internal/simrng"
	"repro/internal/stats"
)

func init() {
	register("cmp-families",
		"Four-family comparison: GUESS vs flooding vs gossip vs DHT (satisfaction, cost, load fairness)",
		runFamilies)
}

// runGossipMemo runs gossip parameter sets sequentially with
// process-level memoization under the given label. Runs share the
// sweepMemo cache with GUESS sweeps; the memo key's family
// discriminator keeps the result types apart. Options.Replications is
// not expanded (one run per point).
func runGossipMemo(opts Options, label string, params []gossip.Params) ([]*gossip.Results, error) {
	key := memoKey("gossip", opts, label, paramsDigest(params))
	if v, ok := sweepMemo.Load(key); ok {
		return v.([]*gossip.Results), nil
	}
	out := make([]*gossip.Results, len(params))
	for i, p := range params {
		e, err := gossip.New(p)
		if err != nil {
			return nil, err
		}
		e.SetObserver(opts.Observer)
		res, err := e.Run(opts.ctx())
		if err != nil {
			return nil, err
		}
		if res.Interrupted {
			return nil, opts.ctx().Err()
		}
		out[i] = res
	}
	sweepMemo.Store(key, out)
	return out, nil
}

// runDHTMemo is runGossipMemo for the DHT engine.
func runDHTMemo(opts Options, label string, params []dht.Params) ([]*dht.Results, error) {
	key := memoKey("dht", opts, label, paramsDigest(params))
	if v, ok := sweepMemo.Load(key); ok {
		return v.([]*dht.Results), nil
	}
	out := make([]*dht.Results, len(params))
	for i, p := range params {
		e, err := dht.New(p)
		if err != nil {
			return nil, err
		}
		e.SetObserver(opts.Observer)
		res, err := e.Run(opts.ctx())
		if err != nil {
			return nil, err
		}
		if res.Interrupted {
			return nil, opts.ctx().Err()
		}
		out[i] = res
	}
	sweepMemo.Store(key, out)
	return out, nil
}

// familyDeadFraction is the static churn stand-in used by the gossip
// and DHT rows, matching the ~10% dead-address level a GUESS cache
// sees under default churn.
const familyDeadFraction = 0.1

// gossipFamilyParams builds the gossip configuration for the
// comparison at network size n with the shared content model.
func gossipFamilyParams(opts Options, n, queries int) gossip.Params {
	p := gossip.DefaultParams()
	p.NetworkSize = n
	p.NumQueries = queries
	p.Seed = opts.seed()
	p.DeadFraction = familyDeadFraction
	p.Content = opts.baseParams().Content
	return p
}

// dhtFamilyParams builds the DHT configuration for the comparison.
func dhtFamilyParams(opts Options, n, lookups int) dht.Params {
	p := dht.DefaultParams()
	p.NetworkSize = n
	p.NumLookups = lookups
	p.Seed = opts.seed()
	p.DeadFraction = familyDeadFraction
	p.Content = opts.baseParams().Content
	return p
}

// loadFloats converts a load vector for the stats helpers.
func loadFloats(loads []int64) []float64 {
	out := make([]float64, len(loads))
	for i, l := range loads {
		out[i] = float64(l)
	}
	return out
}

func runFamilies(opts Options) (*Result, error) {
	n := 1000
	queries := 3000
	if opts.Scale == Quick {
		n = 400
		queries = 1000
	}

	t := report.NewTable("Four-family comparison: satisfaction, cost per query, load fairness",
		"Family", "Config", "Satisfaction", "MsgsPerQuery", "LoadGini", "Top1%Share")

	// GUESS: the full engine with churn, maintenance, and link caches.
	base := opts.baseParams()
	base.NetworkSize = n
	guessRes, err := runAllMemo(opts, "families-guess", []core.Params{base})
	if err != nil {
		return nil, err
	}
	g := guessRes[0]
	gLoads := loadFloats(g.RankedLoads())
	t.AddRow("GUESS", fmt.Sprintf("N=%d cache=%d", n, base.CacheSize),
		1-g.UnsatisfactionWithAborted(), g.ProbesPerQuery(),
		stats.Gini(gLoads), stats.TopShare(gLoads, 0.01))

	// Gnutella flooding over a static overlay sharing the content model.
	ttl := 4
	degree := 8
	u, err := content.New(base.Content)
	if err != nil {
		return nil, err
	}
	rng := simrng.New(opts.seed()).Stream("families-flood")
	topo, err := gnutella.NewRandom(rng, n, degree)
	if err != nil {
		return nil, err
	}
	pop, err := gnutella.NewPopulation(u, n, rng)
	if err != nil {
		return nil, err
	}
	floodLoads := make([]int64, n)
	floodSat := 0
	var floodMsgs int64
	for q := 0; q < queries; q++ {
		res, fs, err := gnutella.FloodSearch(topo, pop, rng, rng.Intn(n), ttl, 1)
		if err != nil {
			return nil, err
		}
		if res.Satisfied {
			floodSat++
		}
		floodMsgs += int64(fs.Messages)
		for _, v := range fs.Reached {
			floodLoads[v]++
		}
	}
	fLoads := loadFloats(floodLoads)
	t.AddRow("Flood", fmt.Sprintf("ttl=%d degree=%d", ttl, degree),
		float64(floodSat)/float64(queries), float64(floodMsgs)/float64(queries),
		stats.Gini(fLoads), stats.TopShare(fLoads, 0.01))

	// Gossip rumor spreading with hit-count and round-budget stopping.
	gp := gossipFamilyParams(opts, n, queries)
	gossipRes, err := runGossipMemo(opts, "families", []gossip.Params{gp})
	if err != nil {
		return nil, err
	}
	gr := gossipRes[0]
	grLoads := loadFloats(gr.PeerLoads)
	t.AddRow("Gossip", fmt.Sprintf("mode=%s fanout=%d rounds<=%d", gp.Mode, gp.Fanout, gp.MaxRounds),
		gr.Satisfaction(), gr.MessagesPerQuery(),
		stats.Gini(grLoads), stats.TopShare(grLoads, 0.01))

	// DHT ring lookup with randomized replication and caching.
	dp := dhtFamilyParams(opts, n, queries)
	dhtRes, err := runDHTMemo(opts, "families", []dht.Params{dp})
	if err != nil {
		return nil, err
	}
	dr := dhtRes[0]
	drLoads := loadFloats(dr.PeerLoads)
	t.AddRow("DHT", fmt.Sprintf("replicas=%d cache=%d hops<=%d", dp.BaseReplicas, dp.CacheSize, dp.MaxHops),
		dr.Satisfaction(), dr.MessagesPerLookup(),
		stats.Gini(drLoads), stats.TopShare(drLoads, 0.01))

	return &Result{Tables: []*report.Table{t}}, nil
}
