package node

import (
	"net/netip"
	"time"

	"repro/internal/cache"
	"repro/internal/policy"
	"repro/internal/wire"
)

// serveLoop reads datagrams and dispatches until the socket closes.
func (n *Node) serveLoop() {
	defer n.wg.Done()
	buf := make([]byte, wire.MaxPacket)
	for {
		count, from, err := n.conn.ReadFrom(buf)
		if err != nil {
			select {
			case <-n.closed:
				return
			default:
			}
			// Transient errors (e.g. ICMP port unreachable surfaced on
			// some platforms) should not kill the node.
			n.logf("read error: %v", err)
			continue
		}
		msg, err := wire.Decode(buf[:count])
		if err != nil {
			n.met.MalformedDropped.Inc()
			continue
		}
		n.dispatch(msg, addrPortOf(from))
	}
}

// dispatch handles one inbound message.
func (n *Node) dispatch(msg wire.Message, from netip.AddrPort) {
	switch m := msg.(type) {
	case *wire.Ping:
		n.met.PingsReceived.Inc()
		n.handlePing(m, from)
	case *wire.Query:
		n.handleQuery(m, from)
	case *wire.Pong, *wire.QueryHit, *wire.Busy:
		n.deliver(msg)
	}
}

// handlePing applies introduction and replies with a pong.
func (n *Node) handlePing(m *wire.Ping, from netip.AddrPort) {
	n.mu.Lock()
	n.introduce(from, m.NumFiles)
	entries := n.pongEntries(n.cfg.PingPong, from)
	n.mu.Unlock()
	if err := n.send(&wire.Pong{MsgID: m.MsgID, Entries: entries}, from); err != nil {
		n.logf("pong to %v: %v", from, err)
	}
}

// handleQuery checks capacity, matches shared files and replies with a
// QueryHit carrying the piggy-backed pong — or Busy when overloaded.
func (n *Node) handleQuery(m *wire.Query, from netip.AddrPort) {
	n.mu.Lock()
	if n.overloaded() {
		n.mu.Unlock()
		n.met.ProbesRefused.Inc()
		if err := n.send(&wire.Busy{MsgID: m.MsgID}, from); err != nil {
			n.logf("busy to %v: %v", from, err)
		}
		return
	}
	n.introduce(from, m.NumFiles)
	entries := n.pongEntries(n.cfg.QueryPong, from)
	n.mu.Unlock()
	n.met.QueriesServed.Inc()

	var results []string
	for _, name := range n.cfg.Files {
		if matches(name, m.Keyword) {
			results = append(results, name)
			if len(results) >= wire.MaxHits || len(results) >= int(m.Desired) {
				break
			}
		}
	}
	hit := &wire.QueryHit{MsgID: m.MsgID, Results: results, Pong: entries}
	if err := n.send(hit, from); err != nil {
		n.logf("queryhit to %v: %v", from, err)
	}
}

// overloaded applies the MaxProbesPerSecond window; callers hold n.mu.
func (n *Node) overloaded() bool {
	if n.cfg.MaxProbesPerSecond <= 0 {
		return false
	}
	sec := time.Now().Unix()
	if sec != n.winStart {
		n.winStart = sec
		n.winCount = 0
	}
	n.winCount++
	return n.winCount > n.cfg.MaxProbesPerSecond
}

// introduce applies the introduction protocol for an interaction
// initiated by from; callers hold n.mu.
func (n *Node) introduce(from netip.AddrPort, numFiles uint32) {
	if from == n.Addr() {
		return
	}
	id := n.idFor(from)
	n.link.Touch(id, n.now())
	if !n.rng.Bool(n.cfg.IntroProb) {
		return
	}
	policy.Insert(n.rng, n.cfg.CacheReplacement, n.link, cache.Entry{
		Addr:     id,
		TS:       n.now(),
		NumFiles: int32(clampFiles(numFiles)),
		Direct:   true,
	})
	n.syncCacheGauge()
}

// pongEntries builds a pong under the given policy, excluding the
// recipient's own address; callers hold n.mu.
func (n *Node) pongEntries(sel policy.Selection, recipient netip.AddrPort) []wire.PongEntry {
	entries := n.link.Entries()
	idx := policy.PickN(n.rng, sel, entries, n.cfg.PongSize+1)
	out := make([]wire.PongEntry, 0, n.cfg.PongSize)
	for _, i := range idx {
		e := entries[i]
		addr := n.addrs[e.Addr]
		if addr == recipient || !addr.IsValid() {
			continue
		}
		numRes := e.NumRes
		if numRes < 0 {
			numRes = 0
		}
		out = append(out, wire.PongEntry{
			Addr:     addr,
			NumFiles: uint32(e.NumFiles),
			NumRes:   uint16(min(int(numRes), 1<<16-1)),
		})
		if len(out) == n.cfg.PongSize {
			break
		}
	}
	return out
}

// deliver routes a response to the waiting request, if any. Replies
// without a pending probe (timed out, completed, or never solicited)
// and redundant copies from duplicating networks are counted and
// dropped so chaos tests can account for every packet.
func (n *Node) deliver(msg wire.Message) {
	n.pendingMu.Lock()
	ch, ok := n.pending[msg.ID()]
	n.pendingMu.Unlock()
	if !ok {
		n.met.LateReplies.Inc()
		return
	}
	select {
	case ch <- msg:
	default:
		n.met.DupReplies.Inc()
	}
}

// await registers interest in replies to msgID. The caller must call
// the returned cancel function.
func (n *Node) await(msgID uint64) (<-chan wire.Message, func()) {
	ch := make(chan wire.Message, 1)
	n.pendingMu.Lock()
	n.pending[msgID] = ch
	n.pendingMu.Unlock()
	return ch, func() {
		n.pendingMu.Lock()
		delete(n.pending, msgID)
		n.pendingMu.Unlock()
	}
}
