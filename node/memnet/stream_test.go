package memnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"
)

func streamPairForTest(t *testing.T) (*Network, net.Listener, net.Conn, net.Conn) {
	t.Helper()
	n := New(1)
	l := n.ListenStream()
	var server net.Conn
	accepted := make(chan error, 1)
	go func() {
		var err error
		server, err = l.Accept()
		accepted <- err
	}()
	client, err := n.DialStream(l.AddrPort())
	if err != nil {
		t.Fatal(err)
	}
	if err := <-accepted; err != nil {
		t.Fatal(err)
	}
	return n, l, client, server
}

func TestStreamRoundTrip(t *testing.T) {
	_, l, client, server := streamPairForTest(t)
	defer l.Close()
	defer client.Close()
	defer server.Close()

	msg := []byte("hello over the switchboard")
	if _, err := client.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(server, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q, want %q", got, msg)
	}
	// And the other direction.
	if _, err := server.Write([]byte("ack")); err != nil {
		t.Fatal(err)
	}
	ack := make([]byte, 3)
	if _, err := io.ReadFull(client, ack); err != nil {
		t.Fatal(err)
	}
	if string(ack) != "ack" {
		t.Fatalf("ack = %q", ack)
	}
}

// TestStreamPartialReads checks chunk remainders: a big write arrives
// intact across many small reads.
func TestStreamPartialReads(t *testing.T) {
	_, l, client, server := streamPairForTest(t)
	defer l.Close()
	defer client.Close()
	defer server.Close()

	msg := bytes.Repeat([]byte("0123456789"), 100)
	go func() {
		client.Write(msg)
		client.Close()
	}()
	var got bytes.Buffer
	buf := make([]byte, 7)
	for {
		n, err := server.Read(buf)
		got.Write(buf[:n])
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got.Bytes(), msg) {
		t.Fatalf("reassembled %d bytes, want %d", got.Len(), len(msg))
	}
}

// TestStreamCloseDeliversBufferedDataFirst pins the EOF contract: data
// written before the writer closed is still readable.
func TestStreamCloseDeliversBufferedDataFirst(t *testing.T) {
	_, l, client, server := streamPairForTest(t)
	defer l.Close()
	defer server.Close()

	if _, err := client.Write([]byte("final")); err != nil {
		t.Fatal(err)
	}
	client.Close()
	got := make([]byte, 5)
	if _, err := io.ReadFull(server, got); err != nil {
		t.Fatalf("buffered data lost at close: %v", err)
	}
	if string(got) != "final" {
		t.Fatalf("got %q", got)
	}
	if _, err := server.Read(got); err != io.EOF {
		t.Fatalf("after drain, err = %v, want io.EOF", err)
	}
	// Writing to a closed peer fails.
	if _, err := server.Write([]byte("x")); err == nil {
		t.Fatal("write to closed peer succeeded")
	}
}

// TestStreamBlockedLinkKillsWrites checks the partition model: Block
// on the client→server link makes client writes fail until Unblock.
func TestStreamBlockedLinkKillsWrites(t *testing.T) {
	n, l, client, server := streamPairForTest(t)
	defer l.Close()
	defer client.Close()
	defer server.Close()

	from := client.LocalAddr().(*net.TCPAddr).AddrPort()
	to := client.RemoteAddr().(*net.TCPAddr).AddrPort()
	n.Block(from, to)
	if _, err := client.Write([]byte("x")); !errors.Is(err, ErrLinkBlocked) {
		t.Fatalf("write over blocked link: err = %v, want ErrLinkBlocked", err)
	}
	// Server→client is a separate directed link and still works.
	if _, err := server.Write([]byte("y")); err != nil {
		t.Fatalf("reverse direction blocked too: %v", err)
	}
	n.Unblock(from, to)
	if _, err := client.Write([]byte("z")); err != nil {
		t.Fatalf("write after Unblock: %v", err)
	}
}

// TestStreamIsolateKillsBothDirections checks Isolate on one endpoint
// fails writes from either side.
func TestStreamIsolateKillsBothDirections(t *testing.T) {
	n, l, client, server := streamPairForTest(t)
	defer l.Close()
	defer client.Close()
	defer server.Close()

	n.Isolate(server.LocalAddr().(*net.TCPAddr).AddrPort())
	if _, err := client.Write([]byte("x")); !errors.Is(err, ErrLinkBlocked) {
		t.Fatalf("write to isolated peer: err = %v, want ErrLinkBlocked", err)
	}
	if _, err := server.Write([]byte("y")); !errors.Is(err, ErrLinkBlocked) {
		t.Fatalf("write from isolated peer: err = %v, want ErrLinkBlocked", err)
	}
}

func TestStreamReadDeadline(t *testing.T) {
	_, l, client, server := streamPairForTest(t)
	defer l.Close()
	defer client.Close()
	defer server.Close()

	server.SetReadDeadline(time.Now().Add(10 * time.Millisecond))
	buf := make([]byte, 1)
	if _, err := server.Read(buf); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("read past deadline: err = %v, want ErrDeadlineExceeded", err)
	}
	// Clearing the deadline restores blocking reads.
	server.SetReadDeadline(time.Time{})
	go client.Write([]byte("k"))
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatal(err)
	}
}

func TestStreamWriteDeadlineOnFullBuffer(t *testing.T) {
	_, l, client, server := streamPairForTest(t)
	defer l.Close()
	defer client.Close()
	defer server.Close()

	client.SetWriteDeadline(time.Now().Add(20 * time.Millisecond))
	var err error
	for i := 0; i < streamChunks+1; i++ {
		if _, err = client.Write([]byte("chunk")); err != nil {
			break
		}
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("write into full buffer: err = %v, want ErrDeadlineExceeded", err)
	}
}

func TestStreamDialErrors(t *testing.T) {
	n := New(1)
	l := n.ListenStream()
	addr := l.AddrPort()

	// Dialing a blocked destination refuses.
	other := n.ListenStream() // source addresses are fresh, so block the default
	_ = other
	l.Close()
	if _, err := n.DialStream(addr); err == nil {
		t.Fatal("dial to closed listener succeeded")
	}
	// Accept on a closed listener errors.
	if _, err := l.Accept(); err != net.ErrClosed {
		t.Fatalf("Accept on closed listener: err = %v, want net.ErrClosed", err)
	}
}
