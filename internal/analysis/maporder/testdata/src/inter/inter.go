// Package inter poses as repro/internal/core to exercise the
// interprocedural maporder cases: stdlib iterators, collected key
// slices, helper laundering, labels, and taint stopped by a reasoned
// annotation at the source.
package inter

import (
	"maps"
	"slices"
)

// viaKeysIter ranges over the maps.Keys iterator: still map order.
func viaKeysIter(m map[string]int) []string {
	var out []string
	for k := range maps.Keys(m) { // want `order laundered through maps.Keys`
		out = append(out, k+"!")
	}
	return out
}

// viaCollect ranges over a slice collected from the iterator: the
// collection froze map order into the slice.
func viaCollect(m map[string]int) []string {
	var out []string
	for _, k := range slices.Collect(maps.Keys(m)) { // want `order laundered through slices.Collect`
		out = append(out, k)
	}
	return out
}

// collectSorted sorts the collected keys before iterating: fine.
func collectSorted(m map[string]int) []string {
	keys := slices.Collect(maps.Keys(m))
	slices.Sort(keys)
	var out []string
	for _, k := range keys {
		out = append(out, k)
	}
	return out
}

// keysOf returns keys in map order: its own loop is flagged (no sort
// follows the append), and its summary marks the return as map-ordered.
func keysOf(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m { // want `map iteration order can reach observable state`
		out = append(out, k)
	}
	return out
}

// viaHelper ranges over the helper's result: extracting the key
// collection does not launder the order away.
func viaHelper(m map[string]int) []string {
	var out []string
	for _, k := range keysOf(m) { // want `order laundered through repro/internal/core.keysOf`
		out = append(out, k)
	}
	return out
}

// labeled puts a label in front of the range: looked through.
func labeled(m map[string]int) []string {
	var out []string
outer:
	for k := range m { // want `map iteration order can reach observable state`
		out = append(out, k)
		if k == "stop" {
			break outer
		}
	}
	return out
}

// vouchedKeys annotates its range with a reason; the vouched-for order
// must not re-surface at call sites through the summary.
func vouchedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	//lint:maporder-ok callers treat the result as an unordered set
	for k := range m {
		out = append(out, k)
	}
	return out
}

// viaVouched ranges order-sensitively over the vouched helper's
// result: the annotation at the source stops the taint.
func viaVouched(m map[string]int) []string {
	var out []string
	for _, k := range vouchedKeys(m) {
		out = append(out, k)
	}
	return out
}
