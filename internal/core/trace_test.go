package core

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestTraceWritesTimeSeries(t *testing.T) {
	var b strings.Builder
	p := quickParams()
	p.Trace = &b
	run(t, p)
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) < 3 {
		t.Fatalf("trace has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "time,births,deaths,queries") {
		t.Fatalf("bad header %q", lines[0])
	}
	// Rows have 8 comma-separated fields and non-decreasing time.
	prevTime := ""
	for _, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if len(fields) != 8 {
			t.Fatalf("row %q has %d fields", line, len(fields))
		}
		if prevTime != "" && len(fields[0]) < len(prevTime) {
			t.Fatalf("time went backwards: %q after %q", fields[0], prevTime)
		}
		prevTime = fields[0]
	}
}

type failingWriter struct{ err error }

func (w failingWriter) Write([]byte) (int, error) { return 0, w.err }

func TestTraceWriterErrorSurfaces(t *testing.T) {
	wantErr := errors.New("disk full")
	p := quickParams()
	p.Trace = failingWriter{err: wantErr}
	e, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(context.Background()); !errors.Is(err, wantErr) {
		t.Fatalf("Run error = %v, want wrapped %v", err, wantErr)
	}
}
