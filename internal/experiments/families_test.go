package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestRunCmpFamilies(t *testing.T) {
	skipHeavy(t)
	res, err := Run("cmp-families", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, "cmp-families", res)
	rows := res.Tables[0].Rows()
	wantFamilies := []string{"GUESS", "Flood", "Gossip", "DHT"}
	if len(rows) != len(wantFamilies) {
		t.Fatalf("cmp-families has %d rows, want %d", len(rows), len(wantFamilies))
	}
	for i, fam := range wantFamilies {
		if rows[i][0] != fam {
			t.Fatalf("row %d family = %q, want %q (rows: %v)", i, rows[i][0], fam, rows)
		}
		sat, err := strconv.ParseFloat(rows[i][2], 64)
		if err != nil {
			t.Fatalf("%s satisfaction %q: %v", fam, rows[i][2], err)
		}
		if sat < 0 || sat > 1 {
			t.Fatalf("%s satisfaction %v outside [0,1]", fam, sat)
		}
		msgs, err := strconv.ParseFloat(rows[i][3], 64)
		if err != nil {
			t.Fatalf("%s msgs/query %q: %v", fam, rows[i][3], err)
		}
		if msgs <= 0 {
			t.Fatalf("%s msgs/query = %v, want > 0", fam, msgs)
		}
	}

	// The rendered table must be byte-identical across repeated runs at
	// the same seed — the comparison's headline determinism guarantee.
	var first strings.Builder
	if _, err := res.WriteTo(&first); err != nil {
		t.Fatal(err)
	}
	again, err := Run("cmp-families", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	var second strings.Builder
	if _, err := again.WriteTo(&second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatalf("cmp-families not reproducible at fixed seed:\nfirst:\n%s\nsecond:\n%s",
			first.String(), second.String())
	}
}
