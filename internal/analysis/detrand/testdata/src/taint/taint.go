// Package core poses as repro/internal/core: deterministic code must
// not reach nondeterminism by routing through helpers in exempt
// packages — the summary-carried taint is reported at the call site.
package core

import "repro/node"

func tick() int64 {
	return node.Stamp() // want `call reaches the wall clock`
}

func roll() int {
	return node.Jitter() // want `call reaches the global math/rand state`
}

func double(x int) int {
	return node.Scale(x)
}

func vouchedTick() int64 {
	//lint:wallclock-ok boundary logging only, never feeds simulation state
	return node.Stamp()
}
