package core

import (
	"math"
	"testing"
)

func TestMergeResultsEmptyAndSingle(t *testing.T) {
	if MergeResults(nil) != nil {
		t.Fatal("empty merge not nil")
	}
	r := &Results{Queries: 3}
	if MergeResults([]*Results{r}) != r {
		t.Fatal("single merge should return the input")
	}
}

func TestMergeResultsCounters(t *testing.T) {
	a := &Results{
		Queries: 10, Satisfied: 8, Unsatisfied: 2, Aborted: 1,
		ProbesTotal: 100, GoodProbes: 80, DeadProbes: 15, RefusedProbes: 5,
		ResponseTimeSum: 50, Pings: 7, DeadPings: 2, Births: 11, Deaths: 1,
		BlacklistEvents: 3, PeerLoads: []int64{1, 2},
		AvgCacheEntries: 10, AvgLiveEntries: 8, AvgLiveFraction: 0.8,
		AvgGoodEntries: 7, CacheSamples: 10,
	}
	b := &Results{
		Queries: 30, Satisfied: 24, Unsatisfied: 6,
		ProbesTotal: 300, GoodProbes: 200, DeadProbes: 80, RefusedProbes: 20,
		ResponseTimeSum: 70, PeerLoads: []int64{3},
		AvgCacheEntries: 20, AvgLiveEntries: 12, AvgLiveFraction: 0.6,
		AvgGoodEntries: 11, CacheSamples: 30,
	}
	m := MergeResults([]*Results{a, b})
	if m.Queries != 40 || m.Satisfied != 32 || m.Unsatisfied != 8 || m.Aborted != 1 {
		t.Fatalf("query counters wrong: %+v", m)
	}
	if m.ProbesTotal != 400 || m.GoodProbes != 280 {
		t.Fatalf("probe counters wrong: %+v", m)
	}
	if got, want := m.ProbesPerQuery(), 10.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("pooled probes/query = %v, want %v", got, want)
	}
	if len(m.PeerLoads) != 3 {
		t.Fatalf("loads not concatenated: %v", m.PeerLoads)
	}
	// Health weighted by samples: (10*10 + 30*20)/40 = 17.5.
	if math.Abs(m.AvgCacheEntries-17.5) > 1e-12 {
		t.Fatalf("weighted cache entries = %v", m.AvgCacheEntries)
	}
	if math.Abs(m.AvgLiveFraction-0.65) > 1e-12 {
		t.Fatalf("weighted live fraction = %v", m.AvgLiveFraction)
	}
	if m.CacheSamples != 40 {
		t.Fatalf("samples = %d", m.CacheSamples)
	}
}

func TestMergeResultsConnectivity(t *testing.T) {
	a := &Results{AvgLargestWCC: 100, ConnectivityRuns: 1, FinalLargestWCC: 90}
	b := &Results{AvgLargestWCC: 200, ConnectivityRuns: 3, FinalLargestWCC: 150}
	m := MergeResults([]*Results{a, b})
	if math.Abs(m.AvgLargestWCC-175) > 1e-12 {
		t.Fatalf("weighted WCC = %v", m.AvgLargestWCC)
	}
	if m.FinalLargestWCC != 150 {
		t.Fatalf("final WCC = %d", m.FinalLargestWCC)
	}
}
