package gnutella

import (
	"testing"

	"repro/internal/content"
	"repro/internal/simrng"
)

func pop(t *testing.T, n int) *Population {
	t.Helper()
	u := content.MustNew(content.DefaultParams())
	p, err := NewPopulation(u, n, simrng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPopulationValidation(t *testing.T) {
	u := content.MustNew(content.DefaultParams())
	if _, err := NewPopulation(u, 0, simrng.New(1)); err == nil {
		t.Fatal("empty population accepted")
	}
}

func TestFixedExtentCostIsExtent(t *testing.T) {
	p := pop(t, 500)
	r := simrng.New(2)
	for _, extent := range []int{1, 10, 100, 500} {
		res := p.FixedExtent(r, p.Universe().DrawQuery(r), extent, 1)
		if res.Probes != extent {
			t.Fatalf("extent %d cost %d probes", extent, res.Probes)
		}
	}
	// Extent larger than the population is clamped.
	if res := p.FixedExtent(r, 0, 9999, 1); res.Probes != 500 {
		t.Fatalf("oversized extent probed %d peers", res.Probes)
	}
	// Degenerate extent is raised to 1.
	if res := p.FixedExtent(r, 0, 0, 1); res.Probes != 1 {
		t.Fatalf("zero extent probed %d peers", res.Probes)
	}
}

func TestFixedExtentSatisfactionGrowsWithExtent(t *testing.T) {
	p := pop(t, 1000)
	r := simrng.New(3)
	rate := func(extent int) float64 {
		sat := 0
		const q = 400
		for i := 0; i < q; i++ {
			if p.FixedExtent(r, p.Universe().DrawQuery(r), extent, 1).Satisfied {
				sat++
			}
		}
		return float64(sat) / q
	}
	small, large := rate(5), rate(800)
	if large <= small {
		t.Fatalf("satisfaction did not grow with extent: %v -> %v", small, large)
	}
	if large < 0.8 {
		t.Fatalf("satisfaction at near-full extent only %v", large)
	}
}

func TestIterativeDeepeningStopsEarly(t *testing.T) {
	p := pop(t, 1000)
	r := simrng.New(4)
	batches := DefaultDeepeningBatches(1000)
	// A very popular item should usually be found in the first batch.
	popular := content.ItemID(0)
	res := p.IterativeDeepening(r, popular, batches, 1)
	if !res.Satisfied {
		t.Fatal("popular item not found")
	}
	if res.Probes > batches[0] {
		t.Fatalf("deepening did not stop after first batch: %d probes", res.Probes)
	}
	// A nonexistent item costs the full schedule.
	res = p.IterativeDeepening(r, content.NoItem, batches, 1)
	if res.Satisfied {
		t.Fatal("nonexistent item satisfied")
	}
	if res.Probes != 1000 {
		t.Fatalf("exhaustive deepening probed %d peers, want 1000", res.Probes)
	}
}

func TestIterativeDeepeningCheaperThanFixedFullExtent(t *testing.T) {
	p := pop(t, 1000)
	r := simrng.New(5)
	batches := DefaultDeepeningBatches(1000)
	const q = 500
	totalID, totalFixed := 0, 0
	for i := 0; i < q; i++ {
		item := p.Universe().DrawQuery(r)
		totalID += p.IterativeDeepening(r, item, batches, 1).Probes
		totalFixed += p.FixedExtent(r, item, 1000, 1).Probes
	}
	if totalID >= totalFixed {
		t.Fatalf("iterative deepening (%d probes) not cheaper than full fixed extent (%d)", totalID, totalFixed)
	}
}

func TestDefaultDeepeningBatchesSumToNetwork(t *testing.T) {
	for _, n := range []int{100, 1000, 5000} {
		sum := 0
		for _, b := range DefaultDeepeningBatches(n) {
			if b < 0 {
				t.Fatalf("negative batch for n=%d", n)
			}
			sum += b
		}
		if sum != n {
			t.Fatalf("batches for n=%d sum to %d", n, sum)
		}
	}
}

func TestNewRandomTopology(t *testing.T) {
	if _, err := NewRandom(simrng.New(1), 1, 2); err == nil {
		t.Fatal("tiny topology accepted")
	}
	if _, err := NewRandom(simrng.New(1), 10, 1); err == nil {
		t.Fatal("degree 1 accepted")
	}
	topo, err := NewRandom(simrng.New(1), 200, 6)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumNodes() != 200 {
		t.Fatalf("NumNodes = %d", topo.NumNodes())
	}
	// Ring guarantees connectivity: full-TTL flood reaches everyone.
	stats, err := topo.Flood(0, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Reached) != 200 {
		t.Fatalf("flood reached %d/200 nodes", len(stats.Reached))
	}
	// Average degree close to requested.
	total := 0
	for v := 0; v < 200; v++ {
		total += topo.Degree(v)
	}
	if avg := float64(total) / 200; avg < 4.5 || avg > 6.5 {
		t.Fatalf("average degree %v, want ~6", avg)
	}
}

func TestNewPowerLawTopology(t *testing.T) {
	if _, err := NewPowerLaw(simrng.New(1), 3, 3); err == nil {
		t.Fatal("n <= m accepted")
	}
	if _, err := NewPowerLaw(simrng.New(1), 10, 0); err == nil {
		t.Fatal("m = 0 accepted")
	}
	topo, err := NewPowerLaw(simrng.New(1), 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Power-law graphs have hubs: max degree far above the median.
	maxDeg, total := 0, 0
	for v := 0; v < 500; v++ {
		d := topo.Degree(v)
		total += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	avg := float64(total) / 500
	if float64(maxDeg) < 4*avg {
		t.Fatalf("no hubs: max degree %d vs average %v", maxDeg, avg)
	}
}

func TestFloodTTLLimitsReach(t *testing.T) {
	topo, err := NewRandom(simrng.New(2), 300, 4)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for _, ttl := range []int{0, 1, 2, 3} {
		stats, err := topo.Flood(5, ttl)
		if err != nil {
			t.Fatal(err)
		}
		if len(stats.Reached) < prev {
			t.Fatalf("reach shrank with larger TTL")
		}
		prev = len(stats.Reached)
	}
	if stats, _ := topo.Flood(5, 0); len(stats.Reached) != 1 || stats.Messages != 0 {
		t.Fatal("TTL 0 should reach only the origin with no messages")
	}
	if _, err := topo.Flood(-1, 2); err == nil {
		t.Fatal("bad origin accepted")
	}
	if _, err := topo.Flood(0, -1); err == nil {
		t.Fatal("negative TTL accepted")
	}
}

func TestFloodMessageAmplification(t *testing.T) {
	topo, err := NewRandom(simrng.New(3), 500, 6)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := topo.Flood(0, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Flooding sends more messages than peers reached — the
	// amplification the paper blames for Gnutella's DoS exposure.
	if stats.Messages <= len(stats.Reached) {
		t.Fatalf("no amplification: %d messages for %d peers", stats.Messages, len(stats.Reached))
	}
}

func TestFloodSearch(t *testing.T) {
	p := pop(t, 300)
	topo, err := NewRandom(simrng.New(4), 300, 6)
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := FloodSearch(topo, p, simrng.New(5), 0, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Probes != len(stats.Reached) {
		t.Fatalf("probes %d != reached %d", res.Probes, len(stats.Reached))
	}
	// Size mismatch rejected.
	small := pop(t, 10)
	if _, _, err := FloodSearch(topo, small, simrng.New(6), 0, 4, 1); err == nil {
		t.Fatal("size mismatch accepted")
	}
}
