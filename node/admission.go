package node

import (
	"net/netip"
	"time"
)

// AdmissionMode selects how the node decides which inbound probes to
// serve when demand approaches its capacity.
type AdmissionMode int

const (
	// AdmissionFlat is the paper's capacity model: a flat
	// MaxProbesPerSecond window over queries, refusing everything past
	// the limit with Busy regardless of who is asking. Pings are never
	// refused. This is the default.
	AdmissionFlat AdmissionMode = iota
	// AdmissionFair sheds load by requester: per-requester demand is
	// tracked in an SFB-style constant-memory sketch and, under
	// pressure, requesters over their fair share are refused first
	// while in-capacity requesters keep being served. Degradation is
	// tiered: pings are shed before queries, and cache writes are
	// skipped while the node is under pressure.
	AdmissionFair
)

// Valid reports whether the mode is one of the defined admission modes.
func (m AdmissionMode) Valid() bool {
	return m == AdmissionFlat || m == AdmissionFair
}

// String names the admission mode.
func (m AdmissionMode) String() string {
	switch m {
	case AdmissionFlat:
		return "flat"
	case AdmissionFair:
		return "fair"
	default:
		return "invalid"
	}
}

// probeKind distinguishes the two inbound probe classes for tiered
// shedding.
type probeKind int

const (
	probePing probeKind = iota
	probeQuery
)

// shedTier records which degradation tier refused a probe, so the obs
// counters can account for every shed by cause.
type shedTier int

const (
	shedNone shedTier = iota
	// shedFlat: the flat window refused it (counted only in the
	// pre-existing ProbesRefused counter, preserving default behavior).
	shedFlat
	// shedPing: tier 1, a ping shed under pressure.
	shedPing
	// shedQuery: tier 2, a query shed for exceeding fair share or the
	// hard capacity.
	shedQuery
	// shedDrain: refused because the node is draining for shutdown.
	shedDrain
)

// admitVerdict is one admission decision.
type admitVerdict struct {
	ok bool
	// tier is the shed cause when !ok.
	tier shedTier
	// skipCacheWrite, when ok, asks the serve path to skip link-cache
	// writes for this probe (tier-1 degradation under pressure).
	skipCacheWrite bool
}

// admitter is the pluggable admission controller. admit is called with
// the node mutex held, once per inbound probe.
type admitter interface {
	admit(key uint64, kind probeKind, now time.Time) admitVerdict
}

// flatAdmitter reproduces the node's original capacity model exactly:
// a per-second query counter refusing past MaxProbesPerSecond, with
// pings always admitted.
type flatAdmitter struct {
	capacity int // probes per second; <= 0 means unlimited
	winStart int64
	winCount int
}

func (f *flatAdmitter) admit(key uint64, kind probeKind, now time.Time) admitVerdict {
	if kind == probePing || f.capacity <= 0 {
		return admitVerdict{ok: true}
	}
	sec := now.Unix()
	if sec != f.winStart {
		f.winStart = sec
		f.winCount = 0
	}
	f.winCount++
	if f.winCount > f.capacity {
		return admitVerdict{tier: shedFlat}
	}
	return admitVerdict{ok: true}
}

// Fair-admission sketch geometry. Like Stochastic Fair Blue, requester
// demand is tracked in FairLevels independent hash rows of FairBuckets
// counters each; a requester's demand estimate is the minimum of its
// buckets, so two requesters must collide in every row before one can
// inherit the other's heat. Memory is constant: 4x64 u32 counters.
//
// The geometry is exported because the cluster shed-state protocol
// (node/cluster) ships these exact arrays on the wire: nodes push
// bucket deltas and pull a cluster-merged aggregate, so both sides
// must agree on the shape (and, via the shared salt, on which bucket a
// requester hashes to).
const (
	FairLevels  = 4
	FairBuckets = 64
)

// fairLevels/fairBuckets keep the package-internal spelling terse.
const (
	fairLevels  = FairLevels
	fairBuckets = FairBuckets
)

// AdmissionDelta is the fair sketch's demand counted since the last
// drain: the per-bucket query counts a cluster sync client pushes to
// the shed-state service. Deltas include refused queries — offered
// demand, not admitted demand — so the cluster aggregate sees a
// requester's full appetite.
type AdmissionDelta struct {
	Counts [FairLevels][FairBuckets]uint32
}

// IsZero reports whether the delta carries no demand.
func (d *AdmissionDelta) IsZero() bool {
	for l := range d.Counts {
		for _, c := range d.Counts[l] {
			if c != 0 {
				return false
			}
		}
	}
	return true
}

// AdmissionAggregate is the cluster-merged view of requester demand: a
// per-admission-window estimate of each sketch bucket across every
// node in the cluster, plus the service's active-requester estimate
// (nonzero level-0 buckets of the merged window, for observability).
type AdmissionAggregate struct {
	Counts [FairLevels][FairBuckets]uint32
	Active int
}

// fairAdmitter sheds the heaviest requesters first. Per admission
// window it counts each requester's queries in the sketch; when the
// node is under pressure (the previous or current window's offered
// load exceeds capacity) a query is refused once its requester's
// estimated demand exceeds the fair share capacity/activeRequesters.
// Under pressure pings are shed outright (tier 1) and admitted probes
// skip cache writes; with no pressure everything is admitted up to the
// hard capacity, so an idle node never refuses anyone (the paper's
// work-conserving capacity semantics).
type fairAdmitter struct {
	capacity int           // probes per window (scaled from per-second)
	window   time.Duration // admission window length

	winStart int64 // window index (unix-time / window)
	counts   [fairLevels][fairBuckets]uint32

	// active counts distinct-ish requesters this window (level-0
	// buckets that went nonzero); activePrev carries the previous
	// window's count so fair share is meaningful from a window's first
	// probe.
	active, activePrev int
	// offered/admitted count this window's probes; pressurePrev
	// carries overload across the window boundary so a sustained flash
	// crowd is shed from the first probe of every window.
	offered, admitted int
	pressurePrev      bool

	// delta accrues query counts since the last takeDelta drain
	// (across window rolls — the sync interval need not match the
	// admission window); a cluster sync client pushes it to the
	// shed-state service. Adds saturate instead of wrapping.
	delta AdmissionDelta

	// agg is the cluster-merged demand view installed by the sync
	// client (aggOK false = local-only shedding). Under pressure a
	// requester's demand estimate is max(local, cluster): the cluster
	// estimate already contains this node's pushed demand, so max —
	// not sum — avoids double-counting self while still exposing a
	// requester that spreads its load across nodes.
	agg   AdmissionAggregate
	aggOK bool
}

// newFairAdmitter scales the per-second capacity to the window length.
// A non-positive capacity means unlimited: everything is admitted, as
// in the flat controller.
func newFairAdmitter(perSecond int, window time.Duration) *fairAdmitter {
	if window <= 0 {
		window = time.Second
	}
	cap := 0
	if perSecond > 0 {
		cap = int(float64(perSecond) * window.Seconds())
		if cap < 1 {
			cap = 1
		}
	}
	return &fairAdmitter{capacity: cap, window: window}
}

// roll advances to now's window if it changed, carrying over the
// active-requester and pressure estimates from an immediately
// preceding window and resetting them after an idle gap.
func (f *fairAdmitter) roll(now time.Time) {
	win := now.UnixNano() / int64(f.window)
	if win == f.winStart {
		return
	}
	if win == f.winStart+1 {
		f.activePrev = f.active
		f.pressurePrev = f.offered > f.capacity
	} else {
		f.activePrev = 0
		f.pressurePrev = false
	}
	f.winStart = win
	f.active = 0
	f.offered = 0
	f.admitted = 0
	for l := range f.counts {
		clear(f.counts[l][:])
	}
}

func (f *fairAdmitter) admit(key uint64, kind probeKind, now time.Time) admitVerdict {
	if f.capacity <= 0 {
		return admitVerdict{ok: true}
	}
	f.roll(now)
	f.offered++
	pressure := f.pressurePrev || f.offered > f.capacity

	// Tier 1: pings are deferrable maintenance; under pressure they
	// are shed before any query is.
	if kind == probePing {
		if pressure {
			return admitVerdict{tier: shedPing}
		}
		return admitVerdict{ok: true}
	}

	// Count the query in the sketch (and the cluster delta) and read
	// the requester's demand estimate (min over levels, SFB-style).
	idx := FairIndices(key)
	est := uint32(1<<32 - 1)
	for l := 0; l < fairLevels; l++ {
		b := idx[l]
		f.counts[l][b]++
		if f.delta.Counts[l][b] < ^uint32(0) {
			f.delta.Counts[l][b]++
		}
		if l == 0 && f.counts[l][b] == 1 {
			f.active++
		}
		if f.counts[l][b] < est {
			est = f.counts[l][b]
		}
	}
	// A requester that rotates across the cluster looks light to every
	// node alone; the cluster aggregate exposes its true demand.
	if f.aggOK {
		if a := aggEstimate(&f.agg, idx); a > est {
			est = a
		}
	}

	if f.admitted >= f.capacity {
		return admitVerdict{tier: shedQuery}
	}
	if pressure {
		if int(est) > f.share() {
			return admitVerdict{tier: shedQuery}
		}
		f.admitted++
		return admitVerdict{ok: true, skipCacheWrite: true}
	}
	f.admitted++
	return admitVerdict{ok: true}
}

// aggEstimate reads a requester's cluster-wide demand estimate from an
// aggregate: the SFB min over its bucket in every row.
func aggEstimate(agg *AdmissionAggregate, idx [FairLevels]int) uint32 {
	est := uint32(1<<32 - 1)
	for l := 0; l < fairLevels; l++ {
		if c := agg.Counts[l][idx[l]]; c < est {
			est = c
		}
	}
	return est
}

// takeDelta drains the demand counted since the previous drain,
// reporting whether any demand accrued.
func (f *fairAdmitter) takeDelta() (AdmissionDelta, bool) {
	d := f.delta
	f.delta = AdmissionDelta{}
	return d, !d.IsZero()
}

// setAggregate installs (or, with ok false, clears) the cluster view.
func (f *fairAdmitter) setAggregate(agg AdmissionAggregate, ok bool) {
	f.agg, f.aggOK = agg, ok
}

// resetSketch forgets all counted demand — local windows, the unsent
// delta, and the cluster view. The sync client calls it on salt epoch
// rotation: counts hashed under the old salt land in meaningless
// buckets under the new one.
func (f *fairAdmitter) resetSketch() {
	for l := range f.counts {
		clear(f.counts[l][:])
	}
	f.active, f.activePrev = 0, 0
	f.delta = AdmissionDelta{}
	f.agg, f.aggOK = AdmissionAggregate{}, false
}

// share is the per-requester fair share this window: capacity divided
// by the larger of the current and previous windows' active-requester
// estimates, never below 1. The denominator is deliberately local —
// each node's capacity is contended only by requesters active at that
// node — while the cluster aggregate sharpens only the demand
// estimate in the numerator comparison.
func (f *fairAdmitter) share() int {
	active := f.active
	if f.activePrev > active {
		active = f.activePrev
	}
	if active < 1 {
		active = 1
	}
	s := f.capacity / active
	if s < 1 {
		s = 1
	}
	return s
}

// FairIndices maps a requester key to its bucket in each sketch row
// (the SFB row hashes). Exported so the cluster shed-state service and
// its tests can read a requester's estimate out of a merged aggregate
// with exactly the arithmetic the admitter uses.
func FairIndices(key uint64) [FairLevels]int {
	h1, h2 := uint32(key), uint32(key>>32)
	var idx [FairLevels]int
	for l := 0; l < FairLevels; l++ {
		idx[l] = int((h1 + uint32(l)*h2) % fairBuckets)
	}
	return idx
}

// RequesterKey hashes a requester address into the 64-bit sketch key
// (FNV-1a over the salt, IP, and port). Exported for the cluster
// layer: with a cluster-shared salt (Config.KeySalt or a sync client's
// rotated epoch salt) every node hashes a requester to the same
// buckets, which is what makes merged sketches meaningful. Without a
// cluster the salt is per-node so two nodes never shed the same
// colliding requesters.
func RequesterKey(addr netip.AddrPort, salt uint64) uint64 {
	return requesterKey(addr, salt)
}

// requesterKey hashes a requester address into the 64-bit sketch key
// (FNV-1a over the salt, IP, and port).
func requesterKey(addr netip.AddrPort, salt uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	for i := 0; i < 8; i++ {
		mix(byte(salt >> (8 * i)))
	}
	ip := addr.Addr().As16()
	for _, b := range ip {
		mix(b)
	}
	mix(byte(addr.Port()))
	mix(byte(addr.Port() >> 8))
	return h
}
