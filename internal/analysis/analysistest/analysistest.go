// Package analysistest runs guess-lint analyzers over fixture packages
// and checks their findings against // want comments, in the style of
// golang.org/x/tools/go/analysis/analysistest (reimplemented here
// because the repo is stdlib-only).
//
// A fixture is a directory of Go files (conventionally
// testdata/src/<name>/) loaded with a claimed import path, so a
// fixture can pose as a deterministic package ("repro/internal/policy")
// or as an exempt one ("repro/node"). Expectations are comments:
//
//	time.Now() // want `reads the wall clock`
//
// Each string after want is a regular expression; every expectation on
// a line must be matched by a distinct finding on that line, and every
// finding must match an expectation.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// wantRe matches the expectation list at the end of a comment.
var wantRe = regexp.MustCompile(`// want (.*)$`)

// expectation is one `// want` regexp, located at a file:line.
type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// Run loads the fixture package in dir under the claimed import path,
// applies the analyzers, and reports mismatches between findings and
// // want comments through t.
func Run(t *testing.T, dir, importPath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	RunDirs(t, []analysis.DirSpec{{Dir: dir, ImportPath: importPath}}, analyzers...)
}

// RunDirs is Run over several fixture packages loaded together, so
// later packages can import earlier ones and interprocedural analyzers
// see cross-package facts. Expectations are collected from every
// package.
func RunDirs(t *testing.T, specs []analysis.DirSpec, analyzers ...*analysis.Analyzer) {
	t.Helper()
	pkgs, err := analysis.LoadDirs(specs)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	findings, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	wants := make(map[string][]*expectation)
	for _, pkg := range pkgs {
		if err := parseWants(pkg, wants); err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		if !claim(wants[key], f.Message) {
			t.Errorf("unexpected finding at %s: [%s] %s", key, f.Analyzer, f.Message)
		}
	}
	for key, exps := range wants {
		for _, e := range exps {
			if !e.matched {
				t.Errorf("no finding at %s matching %q", key, e.re)
			}
		}
	}
}

// claim marks the first unmatched expectation matching msg.
func claim(exps []*expectation, msg string) bool {
	for _, e := range exps {
		if !e.matched && e.re.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

// parseWants extracts // want expectations keyed by "file:line" into
// wants.
func parseWants(pkg *analysis.Package, wants map[string][]*expectation) error {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				patterns, err := splitPatterns(m[1])
				if err != nil {
					return fmt.Errorf("%s: %v", key, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						return fmt.Errorf("%s: bad want pattern %q: %v", key, p, err)
					}
					wants[key] = append(wants[key], &expectation{re: re})
				}
			}
		}
	}
	return nil
}

// splitPatterns parses a sequence of Go-quoted or backquoted strings.
func splitPatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' && s[0] != '`' {
			return nil, fmt.Errorf("want patterns must be quoted strings, got %q", s)
		}
		quote := s[0]
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("unterminated want pattern in %q", s)
		}
		raw := s[:end+2]
		p, err := strconv.Unquote(raw)
		if err != nil {
			return nil, fmt.Errorf("bad want pattern %s: %v", raw, err)
		}
		out = append(out, p)
		s = strings.TrimSpace(s[end+2:])
	}
	return out, nil
}
