package orchestrate

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/experiments"
	"repro/node/memnet"
)

// LocalPool is a coordinator plus K in-process workers wired over
// node/memnet streams — the complete wire path (framing, checksums,
// dispatch, reassembly) without sockets or extra processes. It backs
// the guess-experiments -workers flag and is the reference executor
// the distributed byte-identity tests compare against.
type LocalPool struct {
	coord  *Coordinator
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

var _ experiments.Executor = (*LocalPool)(nil)

// NewLocalPool starts a coordinator with the given number of
// in-process workers.
func NewLocalPool(workers int, cfg Config) (*LocalPool, error) {
	if workers < 1 {
		workers = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &LocalPool{coord: New(cfg), cancel: cancel}
	n := memnet.New(1)
	l := n.ListenStream()
	defer l.Close()
	for i := 0; i < workers; i++ {
		client, err := n.DialStream(l.AddrPort())
		if err != nil {
			cancel()
			p.coord.Close()
			return nil, fmt.Errorf("orchestrate: local pool: %w", err)
		}
		server, err := l.Accept()
		if err != nil {
			cancel()
			p.coord.Close()
			return nil, fmt.Errorf("orchestrate: local pool: %w", err)
		}
		name := fmt.Sprintf("local-%d", i)
		p.wg.Add(2)
		go func() {
			defer p.wg.Done()
			p.coord.HandleWorker(server)
		}()
		go func() {
			defer p.wg.Done()
			RunWorker(ctx, client, name)
		}()
	}
	p.coord.WaitWorkers(workers)
	return p, nil
}

// RunPoints implements experiments.Executor.
func (p *LocalPool) RunPoints(ctx context.Context, pts []experiments.Point) ([]experiments.PointResult, error) {
	return p.coord.RunPoints(ctx, pts)
}

// Stats exposes the underlying coordinator's counters.
func (p *LocalPool) Stats() Stats { return p.coord.Stats() }

// Close stops the workers and the coordinator and waits for both to
// unwind. The pool is unusable afterwards.
func (p *LocalPool) Close() {
	p.cancel()
	p.coord.Close()
	p.wg.Wait()
}
