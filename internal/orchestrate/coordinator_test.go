package orchestrate

// Fault-injection tests for the coordinator: crashed workers, wedged
// workers, corrupt frames, stale results. The misbehaving side is a
// hand-driven protocol client over a memnet stream, so each failure
// mode is injected exactly where it would occur on a real wire.

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/node/memnet"
)

// harness is a coordinator listening on an in-memory stream network.
type harness struct {
	t     *testing.T
	coord *Coordinator
	net   *memnet.Network
	lis   *memnet.StreamListener
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	h := &harness{t: t, coord: New(cfg), net: memnet.New(1)}
	h.lis = h.net.ListenStream()
	go h.coord.Serve(h.lis)
	t.Cleanup(func() {
		h.coord.Close()
		h.lis.Close()
	})
	return h
}

// dial opens a raw protocol connection to the coordinator.
func (h *harness) dial() net.Conn {
	h.t.Helper()
	conn, err := h.net.DialStream(h.lis.AddrPort())
	if err != nil {
		h.t.Fatal(err)
	}
	return conn
}

// startWorker runs a real worker until the harness tears down.
func (h *harness) startWorker(name string) context.CancelFunc {
	h.t.Helper()
	conn := h.dial()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		RunWorker(ctx, conn, name)
	}()
	h.t.Cleanup(func() {
		cancel()
		<-done
	})
	return cancel
}

// tinyPoints builds n distinct minimal-cost GUESS points.
func tinyPoints(n int) []experiments.Point {
	pts := make([]experiments.Point, n)
	for i := range pts {
		p := core.DefaultParams()
		p.NetworkSize = 30
		p.CacheSize = 5 + i
		p.WarmupTime = 5
		p.MeasureTime = 20
		p.Seed = 7
		pts[i] = experiments.Point{Family: experiments.FamilyGUESS, Core: &p}
	}
	return pts
}

// localResults computes the reference results in-process.
func localResults(t *testing.T, pts []experiments.Point) []experiments.PointResult {
	t.Helper()
	out := make([]experiments.PointResult, len(pts))
	for i, pt := range pts {
		pr, err := experiments.RunPoint(context.Background(), pt, experiments.Observation{})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = pr
	}
	return out
}

func sameResults(t *testing.T, got, want []experiments.PointResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range got {
		a, _ := json.Marshal(got[i])
		b, _ := json.Marshal(want[i])
		if string(a) != string(b) {
			t.Fatalf("result %d differs from local run:\n%s\n%s", i, a, b)
		}
	}
}

// TestSweepRunsOnWorkers is the basic path: a deduplicated batch
// executes across two workers and assembles in input order.
func TestSweepRunsOnWorkers(t *testing.T) {
	h := newHarness(t, Config{})
	h.startWorker("w0")
	h.startWorker("w1")

	pts := tinyPoints(5)
	pts = append(pts, pts[2]) // duplicate point: one unit, two slots
	got, err := h.coord.RunPoints(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, got, localResults(t, pts))

	s := h.coord.Stats()
	if s.UnitsTotal != 5 || s.Executed != 5 || s.Deduped != 1 || s.Duplicates != 0 {
		t.Fatalf("stats = %+v, want 5 units, 5 executed, 1 deduped", s)
	}
}

// TestWorkerCrashReassigned kills a worker that has a unit in flight;
// the unit must be reassigned and computed exactly once elsewhere.
func TestWorkerCrashReassigned(t *testing.T) {
	h := newHarness(t, Config{})

	// A hand-driven worker that takes one unit and drops dead.
	crash := h.dial()
	if err := sendMsg(crash, message{Type: msgHello, Worker: "crashy"}); err != nil {
		t.Fatal(err)
	}

	pts := tinyPoints(3)
	type outcome struct {
		res []experiments.PointResult
		err error
	}
	doneCh := make(chan outcome, 1)
	go func() {
		res, err := h.coord.RunPoints(context.Background(), pts)
		doneCh <- outcome{res, err}
	}()

	// Receive a unit, then crash without answering.
	if _, err := recvMsg(crash); err != nil {
		t.Fatal(err)
	}
	crash.Close()

	// A healthy worker arrives and finishes everything, including the
	// abandoned unit.
	h.startWorker("healthy")
	out := <-doneCh
	if out.err != nil {
		t.Fatal(out.err)
	}
	sameResults(t, out.res, localResults(t, pts))

	s := h.coord.Stats()
	if s.Reassigned != 1 {
		t.Fatalf("Reassigned = %d, want 1", s.Reassigned)
	}
	if s.Executed != 3 || s.Duplicates != 0 {
		t.Fatalf("stats = %+v: the crashed unit must be computed exactly once", s)
	}
}

// TestWedgedWorkerTimesOut covers the wedge (not crash) case: a worker
// that accepts a unit and never answers is cut off by the unit timeout
// and its unit reassigned.
func TestWedgedWorkerTimesOut(t *testing.T) {
	h := newHarness(t, Config{UnitTimeout: 100 * time.Millisecond})

	wedged := h.dial()
	if err := sendMsg(wedged, message{Type: msgHello, Worker: "wedged"}); err != nil {
		t.Fatal(err)
	}

	pts := tinyPoints(1)
	type outcome struct {
		res []experiments.PointResult
		err error
	}
	doneCh := make(chan outcome, 1)
	go func() {
		res, err := h.coord.RunPoints(context.Background(), pts)
		doneCh <- outcome{res, err}
	}()

	// Take the unit and sit on it forever.
	if _, err := recvMsg(wedged); err != nil {
		t.Fatal(err)
	}

	h.startWorker("healthy")
	out := <-doneCh
	if out.err != nil {
		t.Fatal(out.err)
	}
	sameResults(t, out.res, localResults(t, pts))
	if s := h.coord.Stats(); s.Reassigned != 1 {
		t.Fatalf("Reassigned = %d, want 1", s.Reassigned)
	}
}

// TestRetriesExhaustedFailsRun checks the retry budget is a hard
// bound: a unit that keeps killing its workers fails the run rather
// than looping forever.
func TestRetriesExhaustedFailsRun(t *testing.T) {
	h := newHarness(t, Config{MaxRetries: 1})

	pts := tinyPoints(1)
	type outcome struct {
		res []experiments.PointResult
		err error
	}
	doneCh := make(chan outcome, 1)
	go func() {
		res, err := h.coord.RunPoints(context.Background(), pts)
		doneCh <- outcome{res, err}
	}()

	// Initial attempt + one retry, both crashing.
	for i := 0; i < 2; i++ {
		conn := h.dial()
		if err := sendMsg(conn, message{Type: msgHello, Worker: "crashy"}); err != nil {
			t.Fatal(err)
		}
		if _, err := recvMsg(conn); err != nil {
			t.Fatal(err)
		}
		conn.Close()
	}

	out := <-doneCh
	if out.err == nil {
		t.Fatal("run succeeded with every worker crashing")
	}
	if !strings.Contains(out.err.Error(), "failed after 2 attempts") {
		t.Fatalf("err = %v, want retry exhaustion", out.err)
	}
	if out.res != nil {
		t.Fatal("failed run returned partial results")
	}
}

// TestCorruptResultFrameRejected checks a result frame that fails its
// checksum (and one that truncates) never reaches the results: the
// connection drops and the unit is recomputed by a healthy worker.
func TestCorruptResultFrameRejected(t *testing.T) {
	corruptions := map[string]func(frame []byte) []byte{
		"checksum mismatch": func(f []byte) []byte {
			f[len(f)-1] ^= 0x01
			return f
		},
		"truncated frame": func(f []byte) []byte {
			return f[:len(f)-3]
		},
	}
	//lint:maporder-ok independent subtests; execution order is irrelevant
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			h := newHarness(t, Config{})

			evil := h.dial()
			if err := sendMsg(evil, message{Type: msgHello, Worker: "evil"}); err != nil {
				t.Fatal(err)
			}

			pts := tinyPoints(1)
			type outcome struct {
				res []experiments.PointResult
				err error
			}
			doneCh := make(chan outcome, 1)
			go func() {
				res, err := h.coord.RunPoints(context.Background(), pts)
				doneCh <- outcome{res, err}
			}()

			m, err := recvMsg(evil)
			if err != nil {
				t.Fatal(err)
			}
			// Build a valid-looking result with poisoned payload bytes.
			bogus := experiments.PointResult{Family: experiments.FamilyGUESS, Core: &core.Results{Queries: 999999}}
			payload, err := json.Marshal(message{Type: msgResult, Result: &unitResult{ID: m.Unit.ID, Key: m.Unit.Key, Result: bogus}})
			if err != nil {
				t.Fatal(err)
			}
			var frame []byte
			frame = binary.BigEndian.AppendUint32(frame, uint32(len(payload)))
			frame = binary.BigEndian.AppendUint32(frame, 0xdeadbeef) // wrong CRC
			frame = append(frame, payload...)
			frame = corrupt(frame)
			if _, err := evil.Write(frame); err != nil {
				t.Fatal(err)
			}
			evil.Close()

			h.startWorker("healthy")
			out := <-doneCh
			if out.err != nil {
				t.Fatal(out.err)
			}
			sameResults(t, out.res, localResults(t, pts))
			if out.res[0].Core.Queries == 999999 {
				t.Fatal("poisoned result reached the run")
			}
		})
	}
}

// TestStaleResultRejected checks a result whose unit ID does not match
// the in-flight unit is discarded and the unit recomputed.
func TestStaleResultRejected(t *testing.T) {
	h := newHarness(t, Config{})

	evil := h.dial()
	if err := sendMsg(evil, message{Type: msgHello, Worker: "evil"}); err != nil {
		t.Fatal(err)
	}

	pts := tinyPoints(2)
	type outcome struct {
		res []experiments.PointResult
		err error
	}
	doneCh := make(chan outcome, 1)
	go func() {
		res, err := h.coord.RunPoints(context.Background(), pts)
		doneCh <- outcome{res, err}
	}()

	m, err := recvMsg(evil)
	if err != nil {
		t.Fatal(err)
	}
	// Answer with a result for a different unit than was dispatched.
	wrong := experiments.PointResult{Family: experiments.FamilyGUESS, Core: &core.Results{Queries: 1}}
	if err := sendMsg(evil, message{Type: msgResult, Result: &unitResult{ID: m.Unit.ID + 1, Key: m.Unit.Key, Result: wrong}}); err != nil {
		t.Fatal(err)
	}

	h.startWorker("healthy")
	out := <-doneCh
	if out.err != nil {
		t.Fatal(out.err)
	}
	sameResults(t, out.res, localResults(t, pts))
	if s := h.coord.Stats(); s.Reassigned != 1 {
		t.Fatalf("Reassigned = %d, want 1", s.Reassigned)
	}
}

// TestWorkerErrorMessageRequeues checks a clean worker-side failure
// (msgError) requeues the unit without dropping the connection.
func TestWorkerErrorMessageRequeues(t *testing.T) {
	h := newHarness(t, Config{MaxRetries: -1})

	pts := tinyPoints(1)
	type outcome struct {
		res []experiments.PointResult
		err error
	}
	doneCh := make(chan outcome, 1)
	go func() {
		res, err := h.coord.RunPoints(context.Background(), pts)
		doneCh <- outcome{res, err}
	}()

	conn := h.dial()
	if err := sendMsg(conn, message{Type: msgHello, Worker: "honest"}); err != nil {
		t.Fatal(err)
	}
	m, err := recvMsg(conn)
	if err != nil {
		t.Fatal(err)
	}
	if err := sendMsg(conn, message{Type: msgError, UnitID: m.Unit.ID, Error: "transient failure"}); err != nil {
		t.Fatal(err)
	}

	out := <-doneCh
	if out.err == nil || !strings.Contains(out.err.Error(), "transient failure") {
		t.Fatalf("err = %v, want the worker's reported failure (retries disabled)", out.err)
	}
}

// TestCacheSkipsRecomputation checks the shared cache short-circuits
// both duplicate units within a run and whole repeat runs.
func TestCacheSkipsRecomputation(t *testing.T) {
	cache := NewMemoryCache()
	h := newHarness(t, Config{Cache: cache})
	h.startWorker("w0")

	pts := tinyPoints(3)
	first, err := h.coord.RunPoints(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	if s := h.coord.Stats(); s.Executed != 3 || s.CacheHits != 0 {
		t.Fatalf("first run stats = %+v", s)
	}

	second, err := h.coord.RunPoints(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	s := h.coord.Stats()
	if s.Executed != 3 {
		t.Fatalf("repeat run recomputed: Executed = %d, want 3", s.Executed)
	}
	if s.CacheHits != 3 {
		t.Fatalf("CacheHits = %d, want 3", s.CacheHits)
	}
	sameResults(t, second, first)
}

// TestDiskCacheAcrossCoordinators checks a disk cache carries results
// to a brand-new coordinator, as across process restarts.
func TestDiskCacheAcrossCoordinators(t *testing.T) {
	dir := t.TempDir()
	cache1, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	h1 := newHarness(t, Config{Cache: cache1})
	h1.startWorker("w0")
	pts := tinyPoints(2)
	first, err := h1.coord.RunPoints(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}

	cache2, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	// No workers at all: every unit must come from disk.
	h2 := newHarness(t, Config{Cache: cache2})
	second, err := h2.coord.RunPoints(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, second, first)
	if s := h2.coord.Stats(); s.Executed != 0 || s.CacheHits != 2 {
		t.Fatalf("stats = %+v, want pure cache run", s)
	}
}

// TestRunPointsContextCancel checks cancellation fails the run
// promptly even with no workers connected.
func TestRunPointsContextCancel(t *testing.T) {
	h := newHarness(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	go cancel()
	_, err := h.coord.RunPoints(ctx, tinyPoints(1))
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestClosedCoordinatorRejectsRuns checks Close is terminal.
func TestClosedCoordinatorRejectsRuns(t *testing.T) {
	h := newHarness(t, Config{})
	h.coord.Close()
	if _, err := h.coord.RunPoints(context.Background(), tinyPoints(1)); err == nil {
		t.Fatal("RunPoints succeeded on a closed coordinator")
	}
}
