package overlay

import (
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/simrng"
)

// build constructs a graph from an edge list over nodes 1..n.
func build(t *testing.T, n int, edges [][2]int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for i := 1; i <= n; i++ {
		if err := b.AddNode(cache.PeerID(i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range edges {
		if err := b.AddEdge(cache.PeerID(e[0]), cache.PeerID(e[1])); err != nil {
			t.Fatal(err)
		}
	}
	g, _ := b.Graph()
	return g
}

func TestEmptyGraph(t *testing.T) {
	b := NewBuilder(0)
	g, dead := b.Graph()
	if g.NumNodes() != 0 || g.NumEdges() != 0 || dead != 0 {
		t.Fatal("empty graph not empty")
	}
	if g.LargestWCC() != 0 || g.LargestSCC() != 0 {
		t.Fatal("components of empty graph not zero")
	}
	if g.WCCSizes() != nil {
		t.Fatal("WCCSizes of empty graph not nil")
	}
}

func TestDuplicateNode(t *testing.T) {
	b := NewBuilder(2)
	if err := b.AddNode(1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddNode(1); err == nil {
		t.Fatal("duplicate node accepted")
	}
}

func TestDeadEdgesDropped(t *testing.T) {
	b := NewBuilder(2)
	_ = b.AddNode(1)
	_ = b.AddNode(2)
	_ = b.AddEdge(1, 2)
	_ = b.AddEdge(1, 99) // dead target
	_ = b.AddEdge(1, 1)  // self loop ignored
	if err := b.AddEdge(42, 1); err == nil {
		t.Fatal("edge from unknown source accepted")
	}
	g, dead := b.Graph()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if dead != 1 {
		t.Fatalf("dead edges = %d, want 1", dead)
	}
}

func TestLargestWCC(t *testing.T) {
	tests := []struct {
		name  string
		n     int
		edges [][2]int
		want  int
	}{
		{"isolated", 4, nil, 1},
		{"chain", 4, [][2]int{{1, 2}, {2, 3}, {3, 4}}, 4},
		{"two components", 5, [][2]int{{1, 2}, {3, 4}, {4, 5}}, 3},
		{"direction ignored", 3, [][2]int{{2, 1}, {2, 3}}, 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := build(t, tt.n, tt.edges)
			if got := g.LargestWCC(); got != tt.want {
				t.Fatalf("LargestWCC = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestWCCSizes(t *testing.T) {
	g := build(t, 6, [][2]int{{1, 2}, {2, 3}, {4, 5}})
	got := g.WCCSizes()
	want := []int{3, 2, 1}
	if len(got) != len(want) {
		t.Fatalf("WCCSizes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("WCCSizes = %v, want %v", got, want)
		}
	}
}

func TestLargestSCC(t *testing.T) {
	tests := []struct {
		name  string
		n     int
		edges [][2]int
		want  int
	}{
		{"no cycles", 3, [][2]int{{1, 2}, {2, 3}}, 1},
		{"triangle", 3, [][2]int{{1, 2}, {2, 3}, {3, 1}}, 3},
		{"cycle plus tail", 5, [][2]int{{1, 2}, {2, 1}, {2, 3}, {3, 4}, {4, 5}}, 2},
		{"two cycles", 6, [][2]int{{1, 2}, {2, 1}, {3, 4}, {4, 5}, {5, 3}, {2, 3}}, 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := build(t, tt.n, tt.edges)
			if got := g.LargestSCC(); got != tt.want {
				t.Fatalf("LargestSCC = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestDegrees(t *testing.T) {
	g := build(t, 3, [][2]int{{1, 2}, {1, 3}, {2, 3}})
	out := g.OutDegrees()
	in := g.InDegrees()
	if out[0] != 2 || out[1] != 1 || out[2] != 0 {
		t.Fatalf("OutDegrees = %v", out)
	}
	if in[0] != 0 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("InDegrees = %v", in)
	}
}

func TestReachableFrom(t *testing.T) {
	g := build(t, 5, [][2]int{{1, 2}, {2, 3}, {4, 5}})
	if got := g.ReachableFrom(1); got != 3 {
		t.Fatalf("ReachableFrom(1) = %d, want 3", got)
	}
	if got := g.ReachableFrom(3); got != 1 {
		t.Fatalf("ReachableFrom(3) = %d, want 1", got)
	}
	if got := g.ReachableFrom(99); got != 0 {
		t.Fatalf("ReachableFrom(99) = %d, want 0", got)
	}
}

// bruteWCC computes the largest weak component by BFS, as an oracle.
func bruteWCC(n int, edges [][2]int) int {
	if n == 0 {
		return 0
	}
	adj := make([][]int, n+1)
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	seen := make([]bool, n+1)
	best := 0
	for s := 1; s <= n; s++ {
		if seen[s] {
			continue
		}
		size := 0
		queue := []int{s}
		seen[s] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			size++
			for _, w := range adj[v] {
				if !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
		if size > best {
			best = size
		}
	}
	return best
}

// TestWCCMatchesBruteForce cross-checks union-find against BFS on
// random graphs.
func TestWCCMatchesBruteForce(t *testing.T) {
	r := simrng.New(1)
	f := func(seed uint16) bool {
		n := 2 + r.Intn(40)
		m := r.Intn(3 * n)
		edges := make([][2]int, 0, m)
		for i := 0; i < m; i++ {
			a := 1 + r.Intn(n)
			b := 1 + r.Intn(n)
			if a != b {
				edges = append(edges, [2]int{a, b})
			}
		}
		g := build(t, n, edges)
		return g.LargestWCC() == bruteWCC(n, edges)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSCCWithinWCC: any SCC is contained in some WCC.
func TestSCCWithinWCC(t *testing.T) {
	r := simrng.New(2)
	for trial := 0; trial < 100; trial++ {
		n := 2 + r.Intn(30)
		m := r.Intn(3 * n)
		edges := make([][2]int, 0, m)
		for i := 0; i < m; i++ {
			a := 1 + r.Intn(n)
			b := 1 + r.Intn(n)
			if a != b {
				edges = append(edges, [2]int{a, b})
			}
		}
		g := build(t, n, edges)
		if g.LargestSCC() > g.LargestWCC() {
			t.Fatalf("SCC %d exceeds WCC %d", g.LargestSCC(), g.LargestWCC())
		}
	}
}

func BenchmarkLargestWCC(b *testing.B) {
	r := simrng.New(1)
	const n = 1000
	bld := NewBuilder(n)
	for i := 1; i <= n; i++ {
		_ = bld.AddNode(cache.PeerID(i))
	}
	for i := 1; i <= n; i++ {
		for j := 0; j < 20; j++ {
			_ = bld.AddEdge(cache.PeerID(i), cache.PeerID(1+r.Intn(n)))
		}
	}
	g, _ := bld.Graph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.LargestWCC()
	}
}
